#include "src/baseline/gossip_detector.h"

#include "src/common/serialize.h"

namespace et::baseline {

using transport::NodeId;

GossipNode::GossipNode(transport::VirtualTimeNetwork& net, std::string name,
                       Duration gossip_interval, Duration failure_timeout,
                       std::size_t fanout, std::uint64_t seed)
    : net_(net),
      name_(std::move(name)),
      interval_(gossip_interval),
      timeout_(failure_timeout),
      fanout_(fanout),
      rng_(seed) {
  node_ = net_.add_node(name_, [this](NodeId from, BytesView payload) {
    on_packet(from, payload);
  });
  table_[name_] = Entry{0, 0, false};
}

void GossipNode::add_peer(GossipNode& other,
                          const transport::LinkParams& params) {
  if (!net_.linked(node_, other.node_)) {
    net_.link(node_, other.node_, params);
  }
  peers_.push_back(other.node_);
  peer_names_[other.node_] = other.name_;
  table_.try_emplace(other.name_, Entry{0, net_.now(), false});
  other.peers_.push_back(node_);
  other.peer_names_[node_] = name_;
  other.table_.try_emplace(name_, Entry{0, net_.now(), false});
}

void GossipNode::start() {
  net_.schedule(node_, interval_, [this] { tick(); });
}

Bytes GossipNode::encode_table() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(table_.size()));
  for (const auto& [member, entry] : table_) {
    w.str(member);
    w.u64(entry.heartbeat);
  }
  return std::move(w).take();
}

void GossipNode::tick() {
  const TimePoint now = net_.now();
  if (alive_) {
    auto& self = table_[name_];
    ++self.heartbeat;
    self.last_bump = now;

    // Gossip to `fanout` distinct random peers.
    if (!peers_.empty()) {
      const std::size_t k = std::min(fanout_, peers_.size());
      // Partial Fisher-Yates over a copy of indices.
      std::vector<std::size_t> idx(peers_.size());
      for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j = i + rng_.next_below(idx.size() - i);
        std::swap(idx[i], idx[j]);
        (void)net_.send(node_, peers_[idx[i]], encode_table());
        ++sent_;
      }
    }
  }

  // Suspicion sweep.
  for (auto& [member, entry] : table_) {
    if (member == name_) continue;
    if (!entry.suspected && now - entry.last_bump > timeout_) {
      entry.suspected = true;
      if (on_suspect) on_suspect(member, now);
    }
  }
  net_.schedule(node_, interval_, [this] { tick(); });
}

void GossipNode::on_packet(NodeId, BytesView payload) {
  const TimePoint now = net_.now();
  try {
    Reader r(payload);
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::string member = r.str();
      const std::uint64_t hb = r.u64();
      auto& entry = table_[member];
      if (hb > entry.heartbeat) {
        entry.heartbeat = hb;
        entry.last_bump = now;
        entry.suspected = false;
      }
    }
  } catch (const SerializeError&) {
    // drop malformed gossip
  }
}

std::vector<std::string> GossipNode::suspected() const {
  std::vector<std::string> out;
  for (const auto& [member, entry] : table_) {
    if (entry.suspected) out.push_back(member);
  }
  return out;
}

GossipSystem::GossipSystem(transport::VirtualTimeNetwork& net, std::size_t n,
                           Duration gossip_interval, Duration failure_timeout,
                           std::size_t fanout,
                           const transport::LinkParams& params,
                           std::uint64_t seed) {
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<GossipNode>(
        net, "gossip" + std::to_string(i), gossip_interval, failure_timeout,
        fanout, seed + i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      nodes_[i]->add_peer(*nodes_[j], params);
    }
  }
}

void GossipSystem::start() {
  for (auto& n : nodes_) n->start();
}

std::uint64_t GossipSystem::total_gossips() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n->gossips_sent();
  return total;
}

}  // namespace et::baseline
