// Baseline 2: gossip-style failure detection (paper §7, Ref [7]).
//
// "Renesse, Minsky and Hayden described the first gossip based failure
// detection service ... a given node gossips (and passes information) to a
// set of randomly selected nodes. Gossip systems tend to scale well and
// have no single point of failure."
//
// Classic heartbeat-counter gossip: each node keeps a table of
// (member -> heartbeat counter, last local increase time). Every round it
// bumps its own counter and ships the table to `fanout` random peers;
// receivers take the element-wise max. A member whose counter stalls for
// `failure_timeout` is suspected.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/transport/virtual_network.h"

namespace et::baseline {

class GossipNode {
 public:
  GossipNode(transport::VirtualTimeNetwork& net, std::string name,
             Duration gossip_interval, Duration failure_timeout,
             std::size_t fanout, std::uint64_t seed);

  void add_peer(GossipNode& other, const transport::LinkParams& params);
  void start();
  void fail() { alive_ = false; }

  [[nodiscard]] std::vector<std::string> suspected() const;
  [[nodiscard]] std::uint64_t gossips_sent() const { return sent_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Fires when this node newly suspects `member`.
  std::function<void(const std::string& member, TimePoint at)> on_suspect;

 private:
  struct Entry {
    std::uint64_t heartbeat = 0;
    TimePoint last_bump = 0;  // local time the counter last increased
    bool suspected = false;
  };

  void tick();
  void on_packet(transport::NodeId from, BytesView payload);
  [[nodiscard]] Bytes encode_table() const;

  transport::VirtualTimeNetwork& net_;
  std::string name_;
  transport::NodeId node_;
  Duration interval_;
  Duration timeout_;
  std::size_t fanout_;
  Rng rng_;
  bool alive_ = true;
  std::uint64_t sent_ = 0;
  std::map<std::string, Entry> table_;
  std::vector<transport::NodeId> peers_;
  std::map<transport::NodeId, std::string> peer_names_;
};

/// N fully meshed gossiping nodes.
class GossipSystem {
 public:
  GossipSystem(transport::VirtualTimeNetwork& net, std::size_t n,
               Duration gossip_interval, Duration failure_timeout,
               std::size_t fanout, const transport::LinkParams& params,
               std::uint64_t seed);

  void start();
  [[nodiscard]] GossipNode& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] std::uint64_t total_gossips() const;

 private:
  std::vector<std::unique_ptr<GossipNode>> nodes_;
};

}  // namespace et::baseline
