// Baseline 1: the naive all-pairs heartbeat scheme from the paper's §1.
//
// "In the simplest scheme, every entity would issue messages at regular
// intervals ... If there are N entities ... there would be N×(N−1)
// messages within the system every second. As the scale of the system
// increases ... every entity within the system would be inundated with
// messages."
//
// Implemented on the virtual-time backend so the message-count experiment
// (DESIGN.md E7) can sweep N into the hundreds. Every node heartbeats all
// peers each interval and declares a peer failed after `failure_timeout`
// without a heartbeat.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/transport/virtual_network.h"

namespace et::baseline {

/// One participant in the all-pairs scheme.
class AllPairsNode {
 public:
  AllPairsNode(transport::VirtualTimeNetwork& net, std::string name,
               Duration heartbeat_interval, Duration failure_timeout);

  /// Links to `other` and starts expecting its heartbeats.
  void add_peer(AllPairsNode& other, const transport::LinkParams& params);

  /// Starts the heartbeat timer.
  void start();

  /// Stops emitting heartbeats (simulated crash).
  void fail() { alive_ = false; }

  /// Peers currently considered failed by this node.
  [[nodiscard]] std::vector<std::string> failed_peers() const;

  /// Called when this node newly suspects `peer`.
  std::function<void(const std::string& peer, TimePoint at)> on_failure;

  [[nodiscard]] std::uint64_t heartbeats_sent() const { return sent_; }
  [[nodiscard]] transport::NodeId node() const { return node_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  void tick();
  void on_packet(transport::NodeId from, BytesView payload);

  transport::VirtualTimeNetwork& net_;
  std::string name_;
  transport::NodeId node_;
  Duration interval_;
  Duration timeout_;
  bool alive_ = true;
  std::uint64_t sent_ = 0;
  struct Peer {
    transport::NodeId node;
    std::string name;
    TimePoint last_heard = 0;
    bool suspected = false;
  };
  std::map<transport::NodeId, Peer> peers_;
};

/// Convenience harness: N fully meshed nodes.
class AllPairsSystem {
 public:
  AllPairsSystem(transport::VirtualTimeNetwork& net, std::size_t n,
                 Duration heartbeat_interval, Duration failure_timeout,
                 const transport::LinkParams& params);

  void start();
  [[nodiscard]] AllPairsNode& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] std::uint64_t total_heartbeats() const;

 private:
  std::vector<std::unique_ptr<AllPairsNode>> nodes_;
};

}  // namespace et::baseline
