// Wire frames of the discovery protocol (entity/broker <-> TDN, TDN <->
// TDN replication).
//
// Distinct from pub/sub frames: discovery traffic is point-to-point
// request/response, not topic-routed. Requests carry the requester's
// credential and a signature over the request body — the TDN will not act
// on anything it cannot authenticate (paper §3.1/§3.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/common/bytes.h"
#include "src/common/serialize.h"
#include "src/crypto/credential.h"
#include "src/discovery/advertisement.h"

namespace et::discovery {

enum class DiscFrameType : std::uint8_t {
  kTopicCreate = 1,       // entity -> TDN
  kTopicCreateResp = 2,   // TDN -> entity (advertisement or error)
  kDiscover = 3,          // tracker -> TDN
  kDiscoverResp = 4,      // TDN -> tracker (matches; unauthorized = silence)
  kReplicate = 5,         // TDN -> TDN (advertisement copy)
  kBrokerRegister = 6,    // broker -> TDN
  kBrokerQuery = 7,       // entity -> TDN
  kBrokerQueryResp = 8,   // TDN -> entity
};

/// Topic-creation request body (paper §3.1's four key components:
/// credentials, descriptor, discovery restrictions, lifetime).
struct TopicCreateRequest {
  crypto::Credential credential;
  std::string descriptor;
  DiscoveryRestrictions restrictions;
  Duration lifetime = 0;
  std::uint64_t request_id = 0;
  Bytes signature;  // requester's signature over signable_bytes()

  [[nodiscard]] Bytes signable_bytes() const;
};

/// Discovery query body (paper §3.4: credential + query of the form
/// /Liveness/Entity-ID; we match queries against stored descriptors).
struct DiscoverRequest {
  crypto::Credential credential;
  std::string query;
  std::uint64_t request_id = 0;
  Bytes signature;

  [[nodiscard]] Bytes signable_bytes() const;
};

/// One discovery frame (tagged union, like pubsub::Frame).
struct DiscFrame {
  DiscFrameType type = DiscFrameType::kTopicCreate;
  std::uint64_t request_id = 0;
  std::uint32_t status = 0;  // 0 = OK on responses
  std::string detail;

  std::optional<TopicCreateRequest> create;       // kTopicCreate
  std::optional<DiscoverRequest> discover;        // kDiscover
  std::vector<TopicAdvertisement> advertisements; // responses / replicate
  std::string broker_name;                        // broker register/resp
  std::uint32_t broker_node = 0;                  // broker register/resp
  Bytes credential_bytes;                         // kBrokerRegister

  [[nodiscard]] Bytes serialize() const;
  static DiscFrame deserialize(BytesView b);
};

}  // namespace et::discovery
