#include "src/discovery/wire.h"

namespace et::discovery {

namespace {
constexpr std::uint8_t kDiscoveryMagic = 0xD7;
}

Bytes TopicCreateRequest::signable_bytes() const {
  Writer w;
  w.bytes(credential.serialize());
  w.str(descriptor);
  restrictions.encode(w);
  w.i64(lifetime);
  w.u64(request_id);
  return std::move(w).take();
}

Bytes DiscoverRequest::signable_bytes() const {
  Writer w;
  w.bytes(credential.serialize());
  w.str(query);
  w.u64(request_id);
  return std::move(w).take();
}

Bytes DiscFrame::serialize() const {
  Writer w;
  w.u8(kDiscoveryMagic);
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(request_id);
  w.u32(status);
  w.str(detail);

  w.boolean(create.has_value());
  if (create) {
    w.bytes(create->credential.serialize());
    w.str(create->descriptor);
    create->restrictions.encode(w);
    w.i64(create->lifetime);
    w.u64(create->request_id);
    w.bytes(create->signature);
  }

  w.boolean(discover.has_value());
  if (discover) {
    w.bytes(discover->credential.serialize());
    w.str(discover->query);
    w.u64(discover->request_id);
    w.bytes(discover->signature);
  }

  w.u32(static_cast<std::uint32_t>(advertisements.size()));
  for (const auto& ad : advertisements) w.bytes(ad.serialize());

  w.str(broker_name);
  w.u32(broker_node);
  w.bytes(credential_bytes);
  return std::move(w).take();
}

DiscFrame DiscFrame::deserialize(BytesView b) {
  Reader r(b);
  if (r.u8() != kDiscoveryMagic) {
    throw SerializeError("not a discovery frame");
  }
  DiscFrame f;
  f.type = static_cast<DiscFrameType>(r.u8());
  if (f.type < DiscFrameType::kTopicCreate ||
      f.type > DiscFrameType::kBrokerQueryResp) {
    throw SerializeError("unknown discovery frame type");
  }
  f.request_id = r.u64();
  f.status = r.u32();
  f.detail = r.str();

  if (r.boolean()) {
    TopicCreateRequest req;
    req.credential = crypto::Credential::deserialize(r.bytes());
    req.descriptor = r.str();
    req.restrictions = DiscoveryRestrictions::decode(r);
    req.lifetime = r.i64();
    req.request_id = r.u64();
    req.signature = r.bytes();
    f.create = std::move(req);
  }

  if (r.boolean()) {
    DiscoverRequest req;
    req.credential = crypto::Credential::deserialize(r.bytes());
    req.query = r.str();
    req.request_id = r.u64();
    req.signature = r.bytes();
    f.discover = std::move(req);
  }

  const std::uint32_t n_ads = r.u32();
  if (n_ads > 100000) throw SerializeError("advertisement list too long");
  f.advertisements.reserve(n_ads);
  for (std::uint32_t i = 0; i < n_ads; ++i) {
    f.advertisements.push_back(TopicAdvertisement::deserialize(r.bytes()));
  }

  f.broker_name = r.str();
  f.broker_node = r.u32();
  f.credential_bytes = r.bytes();
  r.expect_done();
  return f;
}

}  // namespace et::discovery
