#include "src/discovery/discovery_client.h"

#include "src/common/logging.h"

namespace et::discovery {

using transport::NodeId;

DiscoveryClient::DiscoveryClient(transport::NetworkBackend& backend,
                                 crypto::Identity identity)
    : backend_(backend), identity_(std::move(identity)) {
  node_ = backend_.add_node(
      identity_.id + ".disc", [this](NodeId from, Bytes payload) {
        on_packet(from, std::move(payload));
      });
}

DiscoveryClient::~DiscoveryClient() {
  for (auto& [id, pending] : pending_) {
    backend_.cancel(pending.timeout_timer);
  }
  backend_.detach(node_);
}

void DiscoveryClient::attach_tdn(NodeId tdn,
                                 const transport::LinkParams& params) {
  backend_.link(node_, tdn, params);
  tdn_ = tdn;
}

void DiscoveryClient::create_topic(const std::string& descriptor,
                                   DiscoveryRestrictions restrictions,
                                   Duration lifetime, CreateCallback cb,
                                   Duration timeout) {
  backend_.post(node_, [this, descriptor, restrictions = std::move(restrictions),
                        lifetime, cb = std::move(cb), timeout]() mutable {
    const std::uint64_t req_id = next_request_++;
    TopicCreateRequest req;
    req.credential = identity_.credential;
    req.descriptor = descriptor;
    req.restrictions = std::move(restrictions);
    req.lifetime = lifetime;
    req.request_id = req_id;
    req.signature = identity_.keys.private_key.sign(req.signable_bytes());

    DiscFrame f;
    f.type = DiscFrameType::kTopicCreate;
    f.request_id = req_id;
    f.create = std::move(req);

    Pending p;
    p.on_create = std::move(cb);
    p.timeout_timer = backend_.schedule(node_, timeout, [this, req_id] {
      const auto it = pending_.find(req_id);
      if (it == pending_.end()) return;
      auto on_create = std::move(it->second.on_create);
      pending_.erase(it);
      if (on_create) on_create(unavailable("topic creation timed out"));
    });
    pending_.emplace(req_id, std::move(p));

    if (tdn_ == transport::kInvalidNode ||
        !backend_.send(node_, tdn_, f.serialize()).is_ok()) {
      const auto it = pending_.find(req_id);
      if (it != pending_.end()) {
        backend_.cancel(it->second.timeout_timer);
        auto on_create = std::move(it->second.on_create);
        pending_.erase(it);
        if (on_create) on_create(unavailable("no TDN attached"));
      }
    }
  });
}

void DiscoveryClient::discover(const std::string& query, DiscoverCallback cb,
                               Duration timeout) {
  backend_.post(node_, [this, query, cb = std::move(cb), timeout]() mutable {
    const std::uint64_t req_id = next_request_++;
    DiscoverRequest req;
    req.credential = identity_.credential;
    req.query = query;
    req.request_id = req_id;
    req.signature = identity_.keys.private_key.sign(req.signable_bytes());

    DiscFrame f;
    f.type = DiscFrameType::kDiscover;
    f.request_id = req_id;
    f.discover = std::move(req);

    Pending p;
    p.on_discover = std::move(cb);
    p.timeout_timer = backend_.schedule(node_, timeout, [this, req_id] {
      const auto it = pending_.find(req_id);
      if (it == pending_.end()) return;
      auto on_discover = std::move(it->second.on_discover);
      pending_.erase(it);
      // Silence from the TDN means "not discoverable for you" (§3.4).
      if (on_discover) {
        on_discover(not_found("discovery query went unanswered"));
      }
    });
    pending_.emplace(req_id, std::move(p));

    if (tdn_ == transport::kInvalidNode ||
        !backend_.send(node_, tdn_, f.serialize()).is_ok()) {
      const auto it = pending_.find(req_id);
      if (it != pending_.end()) {
        backend_.cancel(it->second.timeout_timer);
        auto on_discover = std::move(it->second.on_discover);
        pending_.erase(it);
        if (on_discover) on_discover(unavailable("no TDN attached"));
      }
    }
  });
}

void DiscoveryClient::find_broker(BrokerCallback cb, Duration timeout) {
  backend_.post(node_, [this, cb = std::move(cb), timeout]() mutable {
    const std::uint64_t req_id = next_request_++;
    DiscFrame f;
    f.type = DiscFrameType::kBrokerQuery;
    f.request_id = req_id;

    Pending p;
    p.on_broker = std::move(cb);
    p.timeout_timer = backend_.schedule(node_, timeout, [this, req_id] {
      const auto it = pending_.find(req_id);
      if (it == pending_.end()) return;
      auto on_broker = std::move(it->second.on_broker);
      pending_.erase(it);
      if (on_broker) on_broker(unavailable("broker query timed out"));
    });
    pending_.emplace(req_id, std::move(p));

    if (tdn_ == transport::kInvalidNode ||
        !backend_.send(node_, tdn_, f.serialize()).is_ok()) {
      const auto it = pending_.find(req_id);
      if (it != pending_.end()) {
        backend_.cancel(it->second.timeout_timer);
        auto on_broker = std::move(it->second.on_broker);
        pending_.erase(it);
        if (on_broker) on_broker(unavailable("no TDN attached"));
      }
    }
  });
}

void DiscoveryClient::register_broker(
    const std::string& broker_name, NodeId broker_node,
    const crypto::Credential& broker_credential) {
  backend_.post(node_, [this, broker_name, broker_node,
                        cred = broker_credential.serialize()] {
    DiscFrame f;
    f.type = DiscFrameType::kBrokerRegister;
    f.broker_name = broker_name;
    f.broker_node = broker_node;
    f.credential_bytes = cred;
    if (tdn_ != transport::kInvalidNode) {
      (void)backend_.send(node_, tdn_, f.serialize());
    }
  });
}

void DiscoveryClient::on_packet(NodeId from, Bytes payload) {
  (void)from;
  DiscFrame f;
  try {
    f = DiscFrame::deserialize(payload);
  } catch (const SerializeError&) {
    return;
  }
  const auto it = pending_.find(f.request_id);
  if (it == pending_.end()) return;
  Pending p = std::move(it->second);
  pending_.erase(it);
  backend_.cancel(p.timeout_timer);

  switch (f.type) {
    case DiscFrameType::kTopicCreateResp: {
      if (!p.on_create) break;
      if (f.status != 0) {
        p.on_create(unauthenticated(f.detail));
      } else if (f.advertisements.empty()) {
        p.on_create(internal_error("create response without advertisement"));
      } else {
        p.on_create(std::move(f.advertisements.front()));
      }
      break;
    }
    case DiscFrameType::kDiscoverResp: {
      if (!p.on_discover) break;
      p.on_discover(std::move(f.advertisements));
      break;
    }
    case DiscFrameType::kBrokerQueryResp: {
      if (!p.on_broker) break;
      if (f.status != 0) {
        p.on_broker(not_found(f.detail));
      } else {
        p.on_broker(BrokerLocation{f.broker_name, f.broker_node});
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace et::discovery
