#include "src/discovery/discovery_client.h"

#include "src/common/logging.h"

namespace et::discovery {

using transport::NodeId;

namespace {

/// Stable string hash (FNV-1a) for seeding the jitter Rng: std::hash is
/// not guaranteed stable across implementations, and the virtual-time
/// chaos tests need identical retry schedules run-to-run.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

DiscoveryClient::DiscoveryClient(transport::NetworkBackend& backend,
                                 crypto::Identity identity)
    : backend_(backend),
      identity_(std::move(identity)),
      jitter_rng_(fnv1a(identity_.id)) {
  node_ = backend_.add_node(
      identity_.id + ".disc", [this](NodeId from, BytesView payload) {
        on_packet(from, payload);
      });
}

DiscoveryClient::~DiscoveryClient() {
  for (auto& [id, op] : ops_) {
    backend_.cancel(op.timer);
  }
  backend_.detach(node_);
}

void DiscoveryClient::attach_tdn(NodeId tdn,
                                 const transport::LinkParams& params) {
  backend_.link(node_, tdn, params);
  tdns_.push_back(tdn);
}

void DiscoveryClient::create_topic(const std::string& descriptor,
                                   DiscoveryRestrictions restrictions,
                                   Duration lifetime, CreateCallback cb,
                                   Duration timeout) {
  backend_.post(node_, [this, descriptor,
                        restrictions = std::move(restrictions), lifetime,
                        cb = std::move(cb), timeout]() mutable {
    Op op;
    op.type = DiscFrameType::kTopicCreate;
    op.on_create = std::move(cb);
    op.descriptor = descriptor;
    op.restrictions = std::move(restrictions);
    op.lifetime = lifetime;
    op.timeout = timeout;
    start_op(std::move(op));
  });
}

void DiscoveryClient::discover(const std::string& query, DiscoverCallback cb,
                               Duration timeout) {
  backend_.post(node_, [this, query, cb = std::move(cb), timeout]() mutable {
    Op op;
    op.type = DiscFrameType::kDiscover;
    op.on_discover = std::move(cb);
    op.query = query;
    op.timeout = timeout;
    start_op(std::move(op));
  });
}

void DiscoveryClient::find_broker(BrokerCallback cb, Duration timeout) {
  backend_.post(node_, [this, cb = std::move(cb), timeout]() mutable {
    Op op;
    op.type = DiscFrameType::kBrokerQuery;
    op.on_broker = std::move(cb);
    op.timeout = timeout;
    start_op(std::move(op));
  });
}

void DiscoveryClient::start_op(Op op) {
  // Runs in the node context (posted by the public entry points).
  if (tdns_.empty()) {
    resolve_failure(std::move(op));
    return;
  }
  op.retry = RetryState(policy_, backend_.now());
  const std::uint64_t op_id = next_op_++;
  ops_.emplace(op_id, std::move(op));
  send_attempt(op_id);
}

void DiscoveryClient::send_attempt(std::uint64_t op_id) {
  const auto it = ops_.find(op_id);
  if (it == ops_.end()) return;
  Op& op = it->second;

  const std::uint64_t req_id = next_request_++;
  op.request_ids.push_back(req_id);
  request_to_op_.emplace(req_id, op_id);

  DiscFrame f;
  f.type = op.type;
  f.request_id = req_id;
  switch (op.type) {
    case DiscFrameType::kTopicCreate: {
      TopicCreateRequest req;
      req.credential = identity_.credential;
      req.descriptor = op.descriptor;
      req.restrictions = op.restrictions;
      req.lifetime = op.lifetime;
      req.request_id = req_id;
      req.signature = identity_.keys.private_key.sign(req.signable_bytes());
      f.create = std::move(req);
      break;
    }
    case DiscFrameType::kDiscover: {
      DiscoverRequest req;
      req.credential = identity_.credential;
      req.query = op.query;
      req.request_id = req_id;
      req.signature = identity_.keys.private_key.sign(req.signable_bytes());
      f.discover = std::move(req);
      break;
    }
    default:
      break;  // kBrokerQuery carries only the request id
  }

  const NodeId tdn = tdns_[op.tdn_cursor % tdns_.size()];
  op.timer = backend_.schedule(node_, op.timeout,
                               [this, op_id] { attempt_failed(op_id); });
  if (!backend_.send(node_, tdn, f.serialize()).is_ok()) {
    // Unreachable replica: fail the attempt now instead of waiting out
    // the timeout (the backoff/rotation logic is shared).
    backend_.cancel(op.timer);
    op.timer = 0;
    attempt_failed(op_id);
  }
}

void DiscoveryClient::attempt_failed(std::uint64_t op_id) {
  const auto it = ops_.find(op_id);
  if (it == ops_.end()) return;
  Op& op = it->second;
  op.timer = 0;
  Duration backoff = 0;
  if (op.retry.next_delay(backend_.now(), jitter_rng_, &backoff)) {
    // Rotate to the next replica; the old attempt's request id stays
    // mapped so a straggling reply can still resolve the operation.
    ++op.tdn_cursor;
    op.timer = backend_.schedule(node_, backoff,
                                 [this, op_id] { send_attempt(op_id); });
    return;
  }
  resolve_failure(take_op(op_id));
}

DiscoveryClient::Op DiscoveryClient::take_op(std::uint64_t op_id) {
  auto node = ops_.extract(op_id);
  Op op = std::move(node.mapped());
  for (const std::uint64_t req_id : op.request_ids) {
    request_to_op_.erase(req_id);
  }
  backend_.cancel(op.timer);
  op.timer = 0;
  return op;
}

void DiscoveryClient::resolve_failure(Op op) {
  switch (op.type) {
    case DiscFrameType::kTopicCreate:
      if (op.on_create) {
        op.on_create(tdns_.empty()
                         ? unavailable("no TDN attached")
                         : unavailable("topic creation timed out"));
      }
      break;
    case DiscFrameType::kDiscover:
      if (op.on_discover) {
        // Silence from the TDN means "not discoverable for you" (§3.4).
        op.on_discover(tdns_.empty()
                           ? unavailable("no TDN attached")
                           : not_found("discovery query went unanswered"));
      }
      break;
    default:
      if (op.on_broker) {
        op.on_broker(tdns_.empty() ? unavailable("no TDN attached")
                                   : unavailable("broker query timed out"));
      }
      break;
  }
}

void DiscoveryClient::register_broker(
    const std::string& broker_name, NodeId broker_node,
    const crypto::Credential& broker_credential) {
  backend_.post(node_, [this, broker_name, broker_node,
                        cred = broker_credential.serialize()] {
    DiscFrame f;
    f.type = DiscFrameType::kBrokerRegister;
    f.broker_name = broker_name;
    f.broker_node = broker_node;
    f.credential_bytes = cred;
    const Bytes wire = f.serialize();
    for (const NodeId tdn : tdns_) {
      (void)backend_.send(node_, tdn, wire);
    }
  });
}

void DiscoveryClient::on_packet(NodeId from, BytesView payload) {
  (void)from;
  DiscFrame f;
  try {
    f = DiscFrame::deserialize(payload);
  } catch (const SerializeError&) {
    return;
  }
  // Late or duplicate replies (an earlier attempt answering after the
  // retry fired, or after the op resolved) miss this map and are dropped.
  const auto rit = request_to_op_.find(f.request_id);
  if (rit == request_to_op_.end()) return;
  Op op = take_op(rit->second);

  switch (f.type) {
    case DiscFrameType::kTopicCreateResp: {
      if (!op.on_create) break;
      if (f.status != 0) {
        op.on_create(unauthenticated(f.detail));
      } else if (f.advertisements.empty()) {
        op.on_create(internal_error("create response without advertisement"));
      } else {
        op.on_create(std::move(f.advertisements.front()));
      }
      break;
    }
    case DiscFrameType::kDiscoverResp: {
      if (!op.on_discover) break;
      op.on_discover(std::move(f.advertisements));
      break;
    }
    case DiscFrameType::kBrokerQueryResp: {
      if (!op.on_broker) break;
      if (f.status != 0) {
        op.on_broker(not_found(f.detail));
      } else {
        op.on_broker(BrokerLocation{f.broker_name, f.broker_node});
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace et::discovery
