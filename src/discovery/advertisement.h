// Signed topic advertisements (paper §2.2/§3.1).
//
// A Topic Discovery Node answers a topic-creation request by minting a
// UUID trace topic and wrapping it in "a cryptographically signed topic
// advertisement that includes the newly created topic, along with the
// credentials, descriptors, discovery restrictions and lifetime. This
// advertisement establishes the ownership of the topic."
#pragma once

#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/serialize.h"
#include "src/common/status.h"
#include "src/common/uuid.h"
#include "src/crypto/credential.h"

namespace et::discovery {

/// Who may discover a topic. An empty `authorized_subjects` list means any
/// entity presenting a valid CA-issued credential may discover it;
/// otherwise the requester's credential subject must appear in the list.
struct DiscoveryRestrictions {
  std::vector<std::string> authorized_subjects;

  [[nodiscard]] bool allows(const std::string& subject) const;

  void encode(Writer& w) const;
  static DiscoveryRestrictions decode(Reader& r);
};

/// The TDN-signed record binding a trace topic to its owner.
class TopicAdvertisement {
 public:
  TopicAdvertisement() = default;
  TopicAdvertisement(Uuid topic, std::string descriptor,
                     crypto::Credential owner, DiscoveryRestrictions restrict,
                     TimePoint created_at, TimePoint expires_at,
                     std::string issuing_tdn, Bytes signature);

  [[nodiscard]] const Uuid& topic() const { return topic_; }
  [[nodiscard]] const std::string& descriptor() const { return descriptor_; }
  [[nodiscard]] const crypto::Credential& owner() const { return owner_; }
  [[nodiscard]] const DiscoveryRestrictions& restrictions() const {
    return restrictions_;
  }
  [[nodiscard]] TimePoint created_at() const { return created_at_; }
  [[nodiscard]] TimePoint expires_at() const { return expires_at_; }
  [[nodiscard]] const std::string& issuing_tdn() const { return issuing_tdn_; }
  [[nodiscard]] bool empty() const { return topic_.is_nil(); }

  [[nodiscard]] bool expired(TimePoint now) const { return now >= expires_at_; }

  /// To-be-signed encoding (all fields except the signature).
  [[nodiscard]] Bytes tbs() const;
  [[nodiscard]] Bytes serialize() const;
  static TopicAdvertisement deserialize(BytesView b);

  /// Checks the issuing TDN's signature and the lifetime at `now`.
  [[nodiscard]] Status verify(const crypto::RsaPublicKey& tdn_key,
                              TimePoint now) const;

 private:
  Uuid topic_;
  std::string descriptor_;
  crypto::Credential owner_;
  DiscoveryRestrictions restrictions_;
  TimePoint created_at_ = 0;
  TimePoint expires_at_ = 0;
  std::string issuing_tdn_;
  Bytes signature_;
};

}  // namespace et::discovery
