#include "src/discovery/advertisement.h"

#include <algorithm>

namespace et::discovery {

bool DiscoveryRestrictions::allows(const std::string& subject) const {
  if (authorized_subjects.empty()) return true;
  return std::find(authorized_subjects.begin(), authorized_subjects.end(),
                   subject) != authorized_subjects.end();
}

void DiscoveryRestrictions::encode(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(authorized_subjects.size()));
  for (const auto& s : authorized_subjects) w.str(s);
}

DiscoveryRestrictions DiscoveryRestrictions::decode(Reader& r) {
  DiscoveryRestrictions out;
  const std::uint32_t n = r.u32();
  if (n > 100000) throw SerializeError("restrictions list too long");
  out.authorized_subjects.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.authorized_subjects.push_back(r.str());
  return out;
}

TopicAdvertisement::TopicAdvertisement(
    Uuid topic, std::string descriptor, crypto::Credential owner,
    DiscoveryRestrictions restrict, TimePoint created_at, TimePoint expires_at,
    std::string issuing_tdn, Bytes signature)
    : topic_(topic),
      descriptor_(std::move(descriptor)),
      owner_(std::move(owner)),
      restrictions_(std::move(restrict)),
      created_at_(created_at),
      expires_at_(expires_at),
      issuing_tdn_(std::move(issuing_tdn)),
      signature_(std::move(signature)) {}

Bytes TopicAdvertisement::tbs() const {
  Writer w;
  w.raw(topic_.to_bytes());
  w.str(descriptor_);
  w.bytes(owner_.serialize());
  restrictions_.encode(w);
  w.i64(created_at_);
  w.i64(expires_at_);
  w.str(issuing_tdn_);
  return std::move(w).take();
}

Bytes TopicAdvertisement::serialize() const {
  Writer w;
  w.bytes(tbs());
  w.bytes(signature_);
  return std::move(w).take();
}

TopicAdvertisement TopicAdvertisement::deserialize(BytesView b) {
  Reader outer(b);
  const Bytes tbs_bytes = outer.bytes();
  Bytes sig = outer.bytes();
  outer.expect_done();

  Reader r(tbs_bytes);
  TopicAdvertisement ad;
  ad.topic_ = Uuid::from_bytes(r.raw(16));
  ad.descriptor_ = r.str();
  ad.owner_ = crypto::Credential::deserialize(r.bytes());
  ad.restrictions_ = DiscoveryRestrictions::decode(r);
  ad.created_at_ = r.i64();
  ad.expires_at_ = r.i64();
  ad.issuing_tdn_ = r.str();
  r.expect_done();
  ad.signature_ = std::move(sig);
  return ad;
}

Status TopicAdvertisement::verify(const crypto::RsaPublicKey& tdn_key,
                                  TimePoint now) const {
  if (empty()) return unauthenticated("advertisement: empty");
  if (!tdn_key.verify(tbs(), signature_)) {
    return unauthenticated("advertisement: bad TDN signature for topic " +
                           topic_.to_string());
  }
  if (expired(now)) {
    return et::expired("advertisement: topic " + topic_.to_string() +
                       " past its lifetime");
  }
  return Status::ok();
}

}  // namespace et::discovery
