// Topic Discovery Node (paper §2.2).
//
// "These capabilities are provided by specialized nodes — Topic Discovery
// Nodes (TDNs) — within the system. Since a given topic advertisement will
// be stored at multiple TDN nodes, this scheme sustains the loss of TDN
// nodes due to failures or downtimes."
//
// A TDN:
//   * authenticates topic-creation requests (CA-chained credential plus a
//     proof-of-possession signature), mints the 128-bit UUID trace topic
//     ("Generation of the UUID is done at the TDN so that no entity is
//     able to claim some other entity's topic as its own"), signs the
//     advertisement and replicates it to peer TDNs;
//   * answers discovery queries only when the requester's credential
//     passes the advertisement's discovery restrictions; unauthorized
//     queries are IGNORED (no response at all, paper §3.4) — requesters
//     time out instead of learning the topic exists;
//   * acts as the broker-discovery registry (paper Ref [3] substitute):
//     brokers register, entities query for an available broker.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/crypto/credential.h"
#include "src/discovery/advertisement.h"
#include "src/discovery/wire.h"
#include "src/persist/store.h"
#include "src/transport/network.h"

namespace et::discovery {

/// Counters for tests/benches.
struct TdnStats {
  std::uint64_t topics_created = 0;
  std::uint64_t discoveries_answered = 0;
  std::uint64_t discoveries_ignored = 0;  // unauthorized / no match
  std::uint64_t rejected_requests = 0;    // authentication failures
  std::uint64_t replicas_stored = 0;
  std::uint64_t records_recovered = 0;    // persisted entries replayed
  std::uint64_t expired_dropped = 0;      // stale ads refused at
                                          // replication or recovery
};

class Tdn {
 public:
  struct Options {
    /// The TDN's own signing identity.
    crypto::Identity identity;
    /// Trusted CA used to validate requester credentials.
    crypto::RsaPublicKey ca_key;
    /// Drives UUID minting (and broker-query rotation).
    std::uint64_t seed = 0;
    /// Durable state directory (DESIGN.md §16): advertisements and the
    /// broker registry survive a restart-with-state when set. Empty =
    /// in-memory only, the historical behaviour.
    std::string persist_dir;
    persist::FsyncPolicy fsync = persist::FsyncPolicy::kNever;
  };

  Tdn(transport::NetworkBackend& backend, Options options);

  /// Legacy in-memory constructor.
  Tdn(transport::NetworkBackend& backend, crypto::Identity identity,
      crypto::RsaPublicKey ca_key, std::uint64_t seed);

  Tdn(const Tdn&) = delete;
  Tdn& operator=(const Tdn&) = delete;

  /// Declares a peer TDN (must be linked on the backend). Advertisements
  /// created here are replicated to all peers.
  void peer(transport::NodeId other);

  [[nodiscard]] transport::NodeId node() const { return node_; }
  [[nodiscard]] const std::string& name() const { return identity_.id; }
  /// Public key trackers use to verify advertisement provenance.
  [[nodiscard]] const crypto::RsaPublicKey& public_key() const {
    return identity_.keys.public_key;
  }
  [[nodiscard]] const TdnStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t advertisement_count() const {
    return ads_.size();
  }
  /// Size of the broker registry (registrations are idempotent by name,
  /// so re-registering after a partition heal must not grow this).
  [[nodiscard]] std::size_t broker_count() const { return brokers_.size(); }

  /// Direct lookup for tests (bypasses authorization).
  [[nodiscard]] const TopicAdvertisement* find_by_descriptor(
      const std::string& descriptor) const;

  // --- durability (no-ops unless Options::persist_dir was set) ----------

  [[nodiscard]] bool durable() const { return store_.is_open(); }

  /// Folds the replay log into a fresh snapshot.
  Status checkpoint();

  /// Drops every in-memory advertisement and broker entry — the process
  /// died — then either recovers from the durable store (`with_state`,
  /// dropping advertisements that expired during the downtime) or wipes
  /// the store too (cold restart: the disk is gone, re-advertisement is
  /// the only way back). Peers and the backend node survive: this models
  /// the same process re-attaching to its links, which is what the chaos
  /// engine's crash/restart steps already arrange.
  void simulate_restart(bool with_state);

  [[nodiscard]] const persist::DurableStore& store() const { return store_; }

 private:
  void on_packet(transport::NodeId from, BytesView payload);
  void handle_topic_create(transport::NodeId from, DiscFrame f);
  void handle_discover(transport::NodeId from, const DiscFrame& f);
  void handle_replicate(const DiscFrame& f);
  void handle_broker_register(transport::NodeId from, const DiscFrame& f);
  void handle_broker_query(transport::NodeId from, const DiscFrame& f);
  void respond(transport::NodeId to, const DiscFrame& f);

  /// Appends `ad` to the replay log (no-op when not durable).
  void persist_ad(const TopicAdvertisement& ad);
  void persist_broker(const std::string& name, std::uint32_t node);
  void apply_record(BytesView rec);
  void apply_snapshot(BytesView blob);
  [[nodiscard]] Bytes snapshot_blob() const;

  transport::NetworkBackend& backend_;
  crypto::Identity identity_;
  crypto::RsaPublicKey ca_key_;
  Rng rng_;
  transport::NodeId node_;
  std::vector<transport::NodeId> peers_;
  std::map<Uuid, TopicAdvertisement> ads_;
  struct BrokerEntry {
    std::string name;
    std::uint32_t node;
  };
  std::vector<BrokerEntry> brokers_;
  TdnStats stats_;
  persist::DurableStore store_;
  persist::FsyncPolicy fsync_ = persist::FsyncPolicy::kNever;
  std::string persist_dir_;
};

}  // namespace et::discovery
