#include "src/discovery/tdn.h"

#include "src/common/logging.h"
#include "src/common/serialize.h"
#include "src/common/topic_path.h"

namespace et::discovery {

using transport::NodeId;

namespace {
// Replay-log record tags (DESIGN.md §16).
constexpr std::uint8_t kRecordAd = 1;
constexpr std::uint8_t kRecordBroker = 2;
}  // namespace

Tdn::Tdn(transport::NetworkBackend& backend, Options options)
    : backend_(backend),
      identity_(std::move(options.identity)),
      ca_key_(std::move(options.ca_key)),
      rng_(options.seed),
      fsync_(options.fsync),
      persist_dir_(std::move(options.persist_dir)) {
  node_ = backend_.add_node(
      identity_.id, [this](NodeId from, BytesView payload) {
        on_packet(from, payload);
      });
  if (!persist_dir_.empty()) {
    persist::DurableStore::Options so;
    so.dir = persist_dir_;
    so.fsync = fsync_;
    const Status s = store_.open(
        so, [this](BytesView blob) { apply_snapshot(blob); },
        [this](BytesView rec) { apply_record(rec); });
    if (!s.is_ok()) {
      ET_LOG(kWarn) << identity_.id
                    << ": durable store unavailable: " << s.to_string();
    }
  }
}

Tdn::Tdn(transport::NetworkBackend& backend, crypto::Identity identity,
         crypto::RsaPublicKey ca_key, std::uint64_t seed)
    : Tdn(backend, Options{std::move(identity), std::move(ca_key), seed,
                           /*persist_dir=*/{},
                           persist::FsyncPolicy::kNever}) {}

void Tdn::peer(NodeId other) { peers_.push_back(other); }

void Tdn::persist_ad(const TopicAdvertisement& ad) {
  if (!durable()) return;
  Writer w;
  w.u8(kRecordAd);
  w.bytes(ad.serialize());
  (void)store_.append(std::move(w).take());
}

void Tdn::persist_broker(const std::string& name, std::uint32_t node) {
  if (!durable()) return;
  Writer w;
  w.u8(kRecordBroker);
  w.str(name);
  w.u32(node);
  (void)store_.append(std::move(w).take());
}

void Tdn::apply_record(BytesView rec) {
  // Replay is expiry-aware: an advertisement whose lifetime ran out while
  // the TDN was down must not be resurrected by recovery (nor by a heal
  // that replicates it back — see handle_replicate).
  try {
    Reader r(rec);
    const std::uint8_t tag = r.u8();
    if (tag == kRecordAd) {
      const TopicAdvertisement ad = TopicAdvertisement::deserialize(r.bytes());
      r.expect_done();
      if (ad.expired(backend_.now())) {
        ++stats_.expired_dropped;
        return;
      }
      ads_.insert_or_assign(ad.topic(), ad);
      ++stats_.records_recovered;
    } else if (tag == kRecordBroker) {
      const std::string name = r.str();
      const std::uint32_t node = r.u32();
      r.expect_done();
      for (auto& b : brokers_) {
        if (b.name == name) {
          b.node = node;
          ++stats_.records_recovered;
          return;
        }
      }
      brokers_.push_back(BrokerEntry{name, node});
      ++stats_.records_recovered;
    }
  } catch (const SerializeError& e) {
    ET_LOG(kWarn) << identity_.id
                  << ": undecodable persisted record dropped: " << e.what();
  }
}

void Tdn::apply_snapshot(BytesView blob) {
  try {
    Reader r(blob);
    const std::uint32_t ad_count = r.u32();
    for (std::uint32_t i = 0; i < ad_count; ++i) {
      const TopicAdvertisement ad = TopicAdvertisement::deserialize(r.bytes());
      if (ad.expired(backend_.now())) {
        ++stats_.expired_dropped;
        continue;
      }
      ads_.insert_or_assign(ad.topic(), ad);
      ++stats_.records_recovered;
    }
    const std::uint32_t broker_count = r.u32();
    for (std::uint32_t i = 0; i < broker_count; ++i) {
      const std::string name = r.str();
      const std::uint32_t node = r.u32();
      brokers_.push_back(BrokerEntry{name, node});
      ++stats_.records_recovered;
    }
    r.expect_done();
  } catch (const SerializeError& e) {
    ET_LOG(kWarn) << identity_.id
                  << ": undecodable snapshot ignored: " << e.what();
  }
}

Bytes Tdn::snapshot_blob() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(ads_.size()));
  for (const auto& [uuid, ad] : ads_) w.bytes(ad.serialize());
  w.u32(static_cast<std::uint32_t>(brokers_.size()));
  for (const auto& b : brokers_) {
    w.str(b.name);
    w.u32(b.node);
  }
  return std::move(w).take();
}

Status Tdn::checkpoint() {
  if (!durable()) return internal_error("checkpoint on non-durable TDN");
  return store_.checkpoint(snapshot_blob());
}

void Tdn::simulate_restart(bool with_state) {
  ads_.clear();
  brokers_.clear();
  stats_ = {};  // in-memory counters die with the process
  if (!durable()) return;
  if (!with_state) {
    (void)store_.reset();
    return;
  }
  persist::DurableStore::Options so;
  so.dir = persist_dir_;
  so.fsync = fsync_;
  const Status s = store_.open(
      so, [this](BytesView blob) { apply_snapshot(blob); },
      [this](BytesView rec) { apply_record(rec); });
  if (!s.is_ok()) {
    ET_LOG(kWarn) << identity_.id
                  << ": restart-with-state recovery failed: " << s.to_string();
  }
}

const TopicAdvertisement* Tdn::find_by_descriptor(
    const std::string& descriptor) const {
  for (const auto& [uuid, ad] : ads_) {
    if (ad.descriptor() == descriptor) return &ad;
  }
  return nullptr;
}

void Tdn::respond(NodeId to, const DiscFrame& f) {
  (void)backend_.send(node_, to, f.serialize());
}

void Tdn::on_packet(NodeId from, BytesView payload) {
  DiscFrame f;
  try {
    f = DiscFrame::deserialize(payload);
  } catch (const SerializeError& e) {
    ET_LOG(kDebug) << name() << ": malformed discovery frame: " << e.what();
    ++stats_.rejected_requests;
    return;
  }
  switch (f.type) {
    case DiscFrameType::kTopicCreate:
      handle_topic_create(from, std::move(f));
      break;
    case DiscFrameType::kDiscover:
      handle_discover(from, f);
      break;
    case DiscFrameType::kReplicate:
      handle_replicate(f);
      break;
    case DiscFrameType::kBrokerRegister:
      handle_broker_register(from, f);
      break;
    case DiscFrameType::kBrokerQuery:
      handle_broker_query(from, f);
      break;
    default:
      break;  // responses are for clients
  }
}

void Tdn::handle_topic_create(NodeId from, DiscFrame f) {
  if (!f.create) {
    ++stats_.rejected_requests;
    return;
  }
  const TopicCreateRequest& req = *f.create;

  // 1. Credential must chain to the trusted CA and be within validity.
  const TimePoint now = backend_.now();
  if (const Status s = req.credential.verify(ca_key_, now); !s.is_ok()) {
    ++stats_.rejected_requests;
    DiscFrame resp;
    resp.type = DiscFrameType::kTopicCreateResp;
    resp.request_id = req.request_id;
    resp.status = 1;
    resp.detail = s.to_string();
    respond(from, resp);
    return;
  }
  // 2. Proof of possession: the request must be signed by the credential's
  //    private key.
  if (!req.credential.public_key().verify(req.signable_bytes(),
                                          req.signature)) {
    ++stats_.rejected_requests;
    DiscFrame resp;
    resp.type = DiscFrameType::kTopicCreateResp;
    resp.request_id = req.request_id;
    resp.status = 1;
    resp.detail = "topic create request signature invalid";
    respond(from, resp);
    return;
  }
  if (req.lifetime <= 0) {
    ++stats_.rejected_requests;
    DiscFrame resp;
    resp.type = DiscFrameType::kTopicCreateResp;
    resp.request_id = req.request_id;
    resp.status = 1;
    resp.detail = "topic lifetime must be positive";
    respond(from, resp);
    return;
  }

  // Mint the trace topic at the TDN (never at the entity).
  const Uuid topic = Uuid::generate(rng_);
  TopicAdvertisement unsigned_ad(topic, normalize_topic(req.descriptor),
                                 req.credential, req.restrictions, now,
                                 now + req.lifetime, identity_.id, {});
  Bytes sig = identity_.keys.private_key.sign(unsigned_ad.tbs());
  TopicAdvertisement ad(topic, normalize_topic(req.descriptor),
                        req.credential, req.restrictions, now,
                        now + req.lifetime, identity_.id, std::move(sig));
  ads_.insert_or_assign(topic, ad);
  ++stats_.topics_created;
  persist_ad(ad);

  // Replicate to peer TDNs for fault tolerance.
  DiscFrame repl;
  repl.type = DiscFrameType::kReplicate;
  repl.advertisements.push_back(ad);
  for (const NodeId peer_node : peers_) {
    (void)backend_.send(node_, peer_node, repl.serialize());
  }

  DiscFrame resp;
  resp.type = DiscFrameType::kTopicCreateResp;
  resp.request_id = req.request_id;
  resp.advertisements.push_back(std::move(ad));
  respond(from, resp);
}

void Tdn::handle_discover(NodeId from, const DiscFrame& f) {
  if (!f.discover) {
    ++stats_.rejected_requests;
    return;
  }
  const DiscoverRequest& req = *f.discover;
  const TimePoint now = backend_.now();

  // Authentication failures and unauthorized queries are treated alike:
  // the TDN stays silent (paper §3.4 — "no response would be received").
  if (!req.credential.verify(ca_key_, now).is_ok() ||
      !req.credential.public_key().verify(req.signable_bytes(),
                                          req.signature)) {
    ++stats_.discoveries_ignored;
    return;
  }

  // Match the query against stored descriptors. Queries of the paper's
  // /Liveness/<entity> form are rewritten to the Availability descriptor
  // convention; otherwise the query is matched verbatim.
  std::string wanted = normalize_topic(req.query);
  {
    const auto segs = split_topic(wanted);
    if (segs.size() == 2 && segs[0] == "Liveness") {
      wanted = "Availability/Traces/" + segs[1];
    }
  }

  DiscFrame resp;
  resp.type = DiscFrameType::kDiscoverResp;
  resp.request_id = req.request_id;
  for (const auto& [uuid, ad] : ads_) {
    if (ad.expired(now)) continue;
    if (!topic_matches(wanted, ad.descriptor())) continue;
    if (!ad.restrictions().allows(req.credential.subject())) continue;
    resp.advertisements.push_back(ad);
  }
  if (resp.advertisements.empty()) {
    // Nothing discoverable for this requester: silence, not a 404 — the
    // requester must not learn whether the topic exists.
    ++stats_.discoveries_ignored;
    return;
  }
  ++stats_.discoveries_answered;
  respond(from, resp);
}

void Tdn::handle_replicate(const DiscFrame& f) {
  const TimePoint now = backend_.now();
  for (const auto& ad : f.advertisements) {
    // A heal (or a peer recovering from snapshot) may replicate state
    // that expired while this replica was partitioned away: refusing it
    // here is what keeps expiry monotone across the replica set — once an
    // advertisement's lifetime ran out anywhere, no replication path may
    // resurrect it.
    if (ad.expired(now)) {
      ++stats_.expired_dropped;
      continue;
    }
    // Trust but verify: replicas must carry a valid TDN signature from
    // *some* TDN; here all TDNs in a deployment share the CA, so we check
    // against the issuing peer through the ad's own key when it is ours,
    // otherwise store as received (peers are authenticated by link).
    ads_.insert_or_assign(ad.topic(), ad);
    ++stats_.replicas_stored;
    persist_ad(ad);
  }
}

void Tdn::handle_broker_register(NodeId from, const DiscFrame& f) {
  // Broker discovery substitute for paper Ref [3]: validate the broker's
  // credential, then record it.
  try {
    const crypto::Credential cred =
        crypto::Credential::deserialize(f.credential_bytes);
    if (!cred.verify(ca_key_, backend_.now()).is_ok()) {
      ++stats_.rejected_requests;
      return;
    }
  } catch (const SerializeError&) {
    ++stats_.rejected_requests;
    return;
  }
  for (auto& b : brokers_) {
    if (b.name == f.broker_name) {
      if (b.node != f.broker_node) {
        b.node = f.broker_node;
        persist_broker(b.name, b.node);
      }
      return;
    }
  }
  brokers_.push_back(BrokerEntry{f.broker_name, f.broker_node});
  persist_broker(f.broker_name, f.broker_node);
  (void)from;
}

void Tdn::handle_broker_query(NodeId from, const DiscFrame& f) {
  DiscFrame resp;
  resp.type = DiscFrameType::kBrokerQueryResp;
  resp.request_id = f.request_id;
  if (brokers_.empty()) {
    resp.status = 1;
    resp.detail = "no brokers registered";
  } else {
    // Spread load: rotate through registered brokers.
    const BrokerEntry& b =
        brokers_[static_cast<std::size_t>(rng_.next_below(brokers_.size()))];
    resp.broker_name = b.name;
    resp.broker_node = b.node;
  }
  respond(from, resp);
}

}  // namespace et::discovery
