// Client-side API of the discovery protocol.
//
// Wraps one backend node, talks to a TDN, and exposes the asynchronous
// operations entities perform before tracing starts:
//   * create_topic   — the traced entity's first step (§3.1);
//   * discover       — how trackers find a trace topic (§3.4); resolves
//     with kNotFound after `timeout` because unauthorized queries are
//     silently ignored by the TDN;
//   * find_broker    — secure broker discovery (Ref [3] substitute);
//   * register_broker — used by brokers to enroll in the registry.
//
// Callbacks run in the client's node context.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "src/crypto/credential.h"
#include "src/discovery/advertisement.h"
#include "src/discovery/wire.h"
#include "src/transport/network.h"

namespace et::discovery {

/// Result of a broker lookup.
struct BrokerLocation {
  std::string name;
  transport::NodeId node = transport::kInvalidNode;
};

class DiscoveryClient {
 public:
  /// `identity` signs every request this client issues.
  DiscoveryClient(transport::NetworkBackend& backend,
                  crypto::Identity identity);

  DiscoveryClient(const DiscoveryClient&) = delete;
  DiscoveryClient& operator=(const DiscoveryClient&) = delete;

  /// Cancels pending timeout timers and detaches the node handler.
  ~DiscoveryClient();

  /// Links to a TDN; all subsequent requests go there.
  void attach_tdn(transport::NodeId tdn, const transport::LinkParams& params);

  using CreateCallback = std::function<void(Result<TopicAdvertisement>)>;
  using DiscoverCallback =
      std::function<void(Result<std::vector<TopicAdvertisement>>)>;
  using BrokerCallback = std::function<void(Result<BrokerLocation>)>;

  /// Requests a trace topic: descriptor + restrictions + lifetime, signed.
  void create_topic(const std::string& descriptor,
                    DiscoveryRestrictions restrictions, Duration lifetime,
                    CreateCallback cb,
                    Duration timeout = 2 * kSecond);

  /// Issues a discovery query (e.g. "Liveness/entity-7"). Times out with
  /// kNotFound when the TDN stays silent.
  void discover(const std::string& query, DiscoverCallback cb,
                Duration timeout = 2 * kSecond);

  /// Asks the TDN for an available broker.
  void find_broker(BrokerCallback cb, Duration timeout = 2 * kSecond);

  /// Enrolls a broker in the TDN's registry (called by broker owners).
  void register_broker(const std::string& broker_name,
                       transport::NodeId broker_node,
                       const crypto::Credential& broker_credential);

  [[nodiscard]] transport::NodeId node() const { return node_; }

 private:
  void on_packet(transport::NodeId from, Bytes payload);
  std::uint64_t arm_timeout(Duration timeout, std::function<void()> on_fire);

  transport::NetworkBackend& backend_;
  crypto::Identity identity_;
  transport::NodeId node_;
  transport::NodeId tdn_ = transport::kInvalidNode;
  std::uint64_t next_request_ = 1;

  struct Pending {
    CreateCallback on_create;
    DiscoverCallback on_discover;
    BrokerCallback on_broker;
    transport::TimerId timeout_timer = 0;
  };
  std::map<std::uint64_t, Pending> pending_;
};

}  // namespace et::discovery
