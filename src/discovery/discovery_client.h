// Client-side API of the discovery protocol.
//
// Wraps one backend node, talks to one or more replica TDNs, and exposes
// the asynchronous operations entities perform before tracing starts:
//   * create_topic   — the traced entity's first step (§3.1);
//   * discover       — how trackers find a trace topic (§3.4); resolves
//     with kNotFound after the retry budget because unauthorized queries
//     are silently ignored by the TDN;
//   * find_broker    — secure broker discovery (Ref [3] substitute);
//   * register_broker — used by brokers to enroll in the registry
//     (broadcast to every attached replica; registrations are not
//     replicated TDN-to-TDN the way topic advertisements are).
//
// Operations run under a RetryPolicy (default: single attempt, matching
// the paper's fire-and-wait behaviour). With a policy installed via
// set_retry_policy, a timed-out attempt backs off with decorrelated
// jitter, rotates to the next replica TDN, re-signs the request with a
// fresh request id and tries again until the attempt cap or deadline is
// exhausted. Every attempt of an operation stays resolvable: a reply to
// attempt #1 arriving while attempt #2 is in flight completes the
// operation (resolution is idempotent — late replies to an operation that
// already resolved, timed out or was torn down are ignored).
//
// Callbacks run in the client's node context.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/retry.h"
#include "src/crypto/credential.h"
#include "src/discovery/advertisement.h"
#include "src/discovery/wire.h"
#include "src/transport/network.h"

namespace et::discovery {

/// Result of a broker lookup.
struct BrokerLocation {
  std::string name;
  transport::NodeId node = transport::kInvalidNode;
};

class DiscoveryClient {
 public:
  /// `identity` signs every request this client issues.
  DiscoveryClient(transport::NetworkBackend& backend,
                  crypto::Identity identity);

  DiscoveryClient(const DiscoveryClient&) = delete;
  DiscoveryClient& operator=(const DiscoveryClient&) = delete;

  /// Cancels pending timers and detaches the node handler; operations
  /// still in flight are dropped without invoking their callbacks.
  ~DiscoveryClient();

  /// Links to a TDN. May be called repeatedly: each call appends a
  /// replica; requests round-robin across replicas on retry.
  void attach_tdn(transport::NodeId tdn, const transport::LinkParams& params);

  /// Installs the retry policy for subsequent operations. The default is
  /// RetryPolicy::none() — one attempt, preserving single-shot semantics.
  void set_retry_policy(RetryPolicy policy) { policy_ = policy; }

  using CreateCallback = std::function<void(Result<TopicAdvertisement>)>;
  using DiscoverCallback =
      std::function<void(Result<std::vector<TopicAdvertisement>>)>;
  using BrokerCallback = std::function<void(Result<BrokerLocation>)>;

  /// Requests a trace topic: descriptor + restrictions + lifetime, signed.
  void create_topic(const std::string& descriptor,
                    DiscoveryRestrictions restrictions, Duration lifetime,
                    CreateCallback cb,
                    Duration timeout = 2 * kSecond);

  /// Issues a discovery query (e.g. "Liveness/entity-7"). Resolves with
  /// kNotFound when every attempt goes unanswered.
  void discover(const std::string& query, DiscoverCallback cb,
                Duration timeout = 2 * kSecond);

  /// Asks the TDN for an available broker.
  void find_broker(BrokerCallback cb, Duration timeout = 2 * kSecond);

  /// Enrolls a broker in every attached TDN's registry.
  void register_broker(const std::string& broker_name,
                       transport::NodeId broker_node,
                       const crypto::Credential& broker_credential);

  [[nodiscard]] transport::NodeId node() const { return node_; }

  /// Operations still awaiting a reply or a retry slot (diagnostics).
  [[nodiscard]] std::size_t inflight() const { return ops_.size(); }

 private:
  /// One logical operation; may span several request attempts.
  struct Op {
    CreateCallback on_create;
    DiscoverCallback on_discover;
    BrokerCallback on_broker;
    // Request state, re-signed fresh for every attempt.
    std::string descriptor;
    DiscoveryRestrictions restrictions;
    Duration lifetime = 0;
    std::string query;
    DiscFrameType type = DiscFrameType::kBrokerQuery;
    Duration timeout = 0;
    RetryState retry = RetryState(RetryPolicy::none(), 0);
    transport::TimerId timer = 0;  // pending timeout OR backoff timer
    std::vector<std::uint64_t> request_ids;  // every attempt, oldest first
    std::size_t tdn_cursor = 0;
  };

  void start_op(Op op);
  void send_attempt(std::uint64_t op_id);
  void attempt_failed(std::uint64_t op_id);
  /// Removes the op and all its request-id mappings, cancels its timer
  /// and hands back the callbacks. Safe against reentrancy: by the time a
  /// callback runs, no trace of the op remains.
  Op take_op(std::uint64_t op_id);
  void resolve_failure(Op op);
  void on_packet(transport::NodeId from, BytesView payload);

  transport::NetworkBackend& backend_;
  crypto::Identity identity_;
  transport::NodeId node_;
  std::vector<transport::NodeId> tdns_;
  RetryPolicy policy_ = RetryPolicy::none();
  Rng jitter_rng_;
  std::uint64_t next_request_ = 1;
  std::uint64_t next_op_ = 1;
  std::map<std::uint64_t, Op> ops_;                    // op id -> op
  std::map<std::uint64_t, std::uint64_t> request_to_op_;
};

}  // namespace et::discovery
