#include "src/chaos/schedule.h"

#include <algorithm>
#include <stdexcept>

#include "src/transport/fault_injector.h"

namespace et::chaos {

FailureSchedule& FailureSchedule::crash(Duration at,
                                        std::vector<std::size_t> brokers) {
  ScheduleStep s;
  s.kind = ScheduleStep::Kind::kCrash;
  s.at = at;
  s.brokers = std::move(brokers);
  steps_.push_back(std::move(s));
  return *this;
}

FailureSchedule& FailureSchedule::restart(Duration at,
                                          std::vector<std::size_t> brokers) {
  ScheduleStep s;
  s.kind = ScheduleStep::Kind::kRestart;
  s.at = at;
  s.brokers = std::move(brokers);
  steps_.push_back(std::move(s));
  return *this;
}

FailureSchedule& FailureSchedule::partition(
    Duration at, std::vector<std::vector<std::size_t>> groups) {
  ScheduleStep s;
  s.kind = ScheduleStep::Kind::kPartition;
  s.at = at;
  s.groups = std::move(groups);
  steps_.push_back(std::move(s));
  return *this;
}

FailureSchedule& FailureSchedule::heal(Duration at) {
  ScheduleStep s;
  s.kind = ScheduleStep::Kind::kHeal;
  s.at = at;
  steps_.push_back(std::move(s));
  return *this;
}

FailureSchedule& FailureSchedule::link_blackhole(Duration at, std::size_t a,
                                                 std::size_t b) {
  ScheduleStep s;
  s.kind = ScheduleStep::Kind::kLinkBlackhole;
  s.at = at;
  s.link_a = a;
  s.link_b = b;
  steps_.push_back(std::move(s));
  return *this;
}

FailureSchedule& FailureSchedule::link_restore(Duration at, std::size_t a,
                                               std::size_t b) {
  ScheduleStep s;
  s.kind = ScheduleStep::Kind::kLinkRestore;
  s.at = at;
  s.link_a = a;
  s.link_b = b;
  steps_.push_back(std::move(s));
  return *this;
}

namespace {

ScheduleStep state_restart_step(ScheduleStep::Kind kind, Duration at,
                                std::vector<std::size_t> targets, bool tdn) {
  ScheduleStep s;
  s.kind = kind;
  s.at = at;
  s.brokers = std::move(targets);
  s.tdn_target = tdn;
  return s;
}

}  // namespace

FailureSchedule& FailureSchedule::restart_cold(
    Duration at, std::vector<std::size_t> brokers) {
  steps_.push_back(state_restart_step(ScheduleStep::Kind::kRestartCold, at,
                                      std::move(brokers), false));
  return *this;
}

FailureSchedule& FailureSchedule::restart_with_state(
    Duration at, std::vector<std::size_t> brokers) {
  steps_.push_back(state_restart_step(ScheduleStep::Kind::kRestartState, at,
                                      std::move(brokers), false));
  return *this;
}

FailureSchedule& FailureSchedule::tdn_restart_cold(
    Duration at, std::vector<std::size_t> replicas) {
  steps_.push_back(state_restart_step(ScheduleStep::Kind::kRestartCold, at,
                                      std::move(replicas), true));
  return *this;
}

FailureSchedule& FailureSchedule::tdn_restart_with_state(
    Duration at, std::vector<std::size_t> replicas) {
  steps_.push_back(state_restart_step(ScheduleStep::Kind::kRestartState, at,
                                      std::move(replicas), true));
  return *this;
}

FailureSchedule& FailureSchedule::rack_loss(Duration at,
                                            const std::vector<std::size_t>& rack,
                                            Duration outage) {
  crash(at, rack);
  if (outage > 0) restart(at + outage, rack);
  return *this;
}

FailureSchedule& FailureSchedule::rolling_restart(
    Duration start, const std::vector<std::size_t>& brokers, Duration stagger,
    Duration down_for) {
  for (std::size_t i = 0; i < brokers.size(); ++i) {
    const Duration down_at = start + static_cast<Duration>(i) * stagger;
    crash(down_at, {brokers[i]});
    restart(down_at + down_for, {brokers[i]});
  }
  return *this;
}

FailureSchedule& FailureSchedule::flapping_link(Duration start, std::size_t a,
                                                std::size_t b,
                                                Duration down_for,
                                                Duration up_for,
                                                Duration stop) {
  ScheduleStep s;
  s.kind = ScheduleStep::Kind::kLinkFlap;
  s.at = start;
  s.link_a = a;
  s.link_b = b;
  s.down_for = down_for;
  s.up_for = up_for;
  steps_.push_back(std::move(s));
  if (stop > 0) link_restore(start + stop, a, b);
  return *this;
}

FailureSchedule& FailureSchedule::cascading_partition(
    Duration start, const std::vector<std::vector<std::size_t>>& groups,
    Duration stagger, Duration heal_after) {
  if (groups.size() < 2) {
    throw std::invalid_argument(
        "FailureSchedule::cascading_partition: need >= 2 groups");
  }
  // Wave i isolates groups[0..i] from each other and from the remainder;
  // the remainder (everything not yet split off) is implicit — nodes not
  // listed in any group are unrestricted, so each wave must list the
  // still-together tail as one group to keep it separated from the
  // already-isolated heads.
  Duration last = start;
  for (std::size_t wave = 0; wave + 1 < groups.size(); ++wave) {
    std::vector<std::vector<std::size_t>> split;
    for (std::size_t g = 0; g <= wave; ++g) split.push_back(groups[g]);
    std::vector<std::size_t> tail;
    for (std::size_t g = wave + 1; g < groups.size(); ++g) {
      tail.insert(tail.end(), groups[g].begin(), groups[g].end());
    }
    split.push_back(std::move(tail));
    last = start + static_cast<Duration>(wave) * stagger;
    partition(last, std::move(split));
  }
  if (heal_after > 0) heal(last + heal_after);
  return *this;
}

std::vector<std::string> FailureSchedule::describe() const {
  // Stable sort by time keeps same-instant steps in build order, so the
  // rendering is a pure function of the builder calls.
  std::vector<const ScheduleStep*> ordered;
  ordered.reserve(steps_.size());
  for (const auto& s : steps_) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const ScheduleStep* a, const ScheduleStep* b) {
                     return a->at < b->at;
                   });
  std::vector<std::string> out;
  out.reserve(ordered.size());
  for (const ScheduleStep* s : ordered) {
    std::string line = "t=" + std::to_string(s->at) + " ";
    auto list = [](const std::vector<std::size_t>& v) {
      std::string r = "[";
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0) r += ",";
        r += std::to_string(v[i]);
      }
      return r + "]";
    };
    switch (s->kind) {
      case ScheduleStep::Kind::kCrash:
        line += "crash " + list(s->brokers);
        break;
      case ScheduleStep::Kind::kRestart:
        line += "restart " + list(s->brokers);
        break;
      case ScheduleStep::Kind::kPartition: {
        line += "partition ";
        for (std::size_t g = 0; g < s->groups.size(); ++g) {
          if (g > 0) line += "|";
          line += list(s->groups[g]);
        }
        break;
      }
      case ScheduleStep::Kind::kHeal:
        line += "heal";
        break;
      case ScheduleStep::Kind::kLinkBlackhole:
        line += "blackhole " + std::to_string(s->link_a) + "-" +
                std::to_string(s->link_b);
        break;
      case ScheduleStep::Kind::kLinkRestore:
        line += "restore " + std::to_string(s->link_a) + "-" +
                std::to_string(s->link_b);
        break;
      case ScheduleStep::Kind::kLinkFlap:
        line += "flap " + std::to_string(s->link_a) + "-" +
                std::to_string(s->link_b) + " down=" +
                std::to_string(s->down_for) + " up=" +
                std::to_string(s->up_for);
        break;
      case ScheduleStep::Kind::kRestartCold:
        line += std::string(s->tdn_target ? "tdn-" : "") + "restart-cold " +
                list(s->brokers);
        break;
      case ScheduleStep::Kind::kRestartState:
        line += std::string(s->tdn_target ? "tdn-" : "") + "restart-state " +
                list(s->brokers);
        break;
    }
    out.push_back(std::move(line));
  }
  return out;
}

ScheduleEngine::ScheduleEngine(transport::NetworkBackend& backend,
                               pubsub::Topology& topo)
    : backend_(backend), topo_(topo) {
  node_ = backend_.add_node("chaos-engine",
                            [](transport::NodeId, BytesView) {});
}

void ScheduleEngine::set_restart_handler(StateRestartHandler handler) {
  restart_handler_ = std::move(handler);
}

void ScheduleEngine::run(const FailureSchedule& schedule) {
  // Steps are armed as independent timers in the engine node's context;
  // same-instant steps keep build order because timers at equal deadlines
  // fire FIFO on both backends.
  std::vector<const ScheduleStep*> ordered;
  ordered.reserve(schedule.steps().size());
  for (const auto& s : schedule.steps()) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const ScheduleStep* a, const ScheduleStep* b) {
                     return a->at < b->at;
                   });
  for (const ScheduleStep* s : ordered) {
    const ScheduleStep step = *s;  // engine outlives run(); schedule may not
    backend_.schedule(node_, step.at, [this, step] { apply(step); });
  }
}

void ScheduleEngine::apply(const ScheduleStep& s) {
  switch (s.kind) {
    case ScheduleStep::Kind::kCrash:
      for (const std::size_t i : s.brokers) topo_.crash(topo_.broker(i));
      break;
    case ScheduleStep::Kind::kRestart:
      for (const std::size_t i : s.brokers) topo_.restart(topo_.broker(i));
      break;
    case ScheduleStep::Kind::kPartition: {
      std::vector<std::vector<pubsub::Broker*>> groups;
      groups.reserve(s.groups.size());
      for (const auto& g : s.groups) {
        std::vector<pubsub::Broker*> group;
        group.reserve(g.size());
        for (const std::size_t i : g) group.push_back(&topo_.broker(i));
        groups.push_back(std::move(group));
      }
      topo_.partition(groups);
      break;
    }
    case ScheduleStep::Kind::kHeal:
      topo_.heal();
      break;
    case ScheduleStep::Kind::kLinkBlackhole:
      backend_.faults().blackhole(topo_.broker(s.link_a).node(),
                                  topo_.broker(s.link_b).node());
      break;
    case ScheduleStep::Kind::kLinkRestore:
      backend_.faults().restore(topo_.broker(s.link_a).node(),
                                topo_.broker(s.link_b).node());
      break;
    case ScheduleStep::Kind::kLinkFlap:
      backend_.faults().flap(topo_.broker(s.link_a).node(),
                             topo_.broker(s.link_b).node(), s.down_for,
                             s.up_for, backend_.now());
      break;
    case ScheduleStep::Kind::kRestartCold:
    case ScheduleStep::Kind::kRestartState: {
      const bool with_state = s.kind == ScheduleStep::Kind::kRestartState;
      if (restart_handler_) {
        for (const std::size_t i : s.brokers) {
          restart_handler_(i, s.tdn_target, with_state);
        }
      }
      break;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  log_.push_back("t=" + std::to_string(backend_.now()) + " " +
                 describe_step(s));
}

std::string ScheduleEngine::describe_step(const ScheduleStep& s) const {
  switch (s.kind) {
    case ScheduleStep::Kind::kCrash:
      return "crash x" + std::to_string(s.brokers.size());
    case ScheduleStep::Kind::kRestart:
      return "restart x" + std::to_string(s.brokers.size());
    case ScheduleStep::Kind::kPartition:
      return "partition groups=" + std::to_string(s.groups.size());
    case ScheduleStep::Kind::kHeal:
      return "heal";
    case ScheduleStep::Kind::kLinkBlackhole:
      return "blackhole " + std::to_string(s.link_a) + "-" +
             std::to_string(s.link_b);
    case ScheduleStep::Kind::kLinkRestore:
      return "restore " + std::to_string(s.link_a) + "-" +
             std::to_string(s.link_b);
    case ScheduleStep::Kind::kLinkFlap:
      return "flap " + std::to_string(s.link_a) + "-" +
             std::to_string(s.link_b);
    case ScheduleStep::Kind::kRestartCold:
      return std::string(s.tdn_target ? "tdn-" : "") + "restart-cold x" +
             std::to_string(s.brokers.size());
    case ScheduleStep::Kind::kRestartState:
      return std::string(s.tdn_target ? "tdn-" : "") + "restart-state x" +
             std::to_string(s.brokers.size());
  }
  return "?";
}

std::vector<std::string> ScheduleEngine::action_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

}  // namespace et::chaos
