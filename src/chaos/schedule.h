// Declarative failure schedules for chaos topology sweeps (DESIGN.md §12).
//
// Correlated failures — rack loss, rolling restarts, flapping links,
// cascading partitions — are what break availability tracking in practice;
// one-off faults rarely do. A `FailureSchedule` is pure data: high-level
// builders expand the correlated patterns into primitive timed steps at
// build time, so the same schedule value always compiles to the same
// action sequence. A `ScheduleEngine` executes the steps against a broker
// overlay: it registers its own node on the backend and schedules every
// step as a timer in that node's context, which makes the whole schedule
// a deterministic function of (backend seed, schedule) on
// VirtualTimeNetwork and a plain concurrent actor on RealTimeNetwork.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/pubsub/topology.h"
#include "src/transport/network.h"

namespace et::chaos {

/// One primitive timed step. All times are relative to the engine's
/// run() instant; brokers are indices into the overlay's Topology.
struct ScheduleStep {
  enum class Kind : std::uint8_t {
    kCrash,          // crash every broker in `brokers`
    kRestart,        // restart every broker in `brokers`
    kPartition,      // partition the overlay into `groups`
    kHeal,           // remove the partition
    kLinkBlackhole,  // cut the overlay link a<->b
    kLinkRestore,    // clear per-link faults on a<->b
    kLinkFlap,       // duty-cycled blackhole on a<->b from `at`
    kRestartCold,    // process state wiped: in-memory AND durable store
    kRestartState,   // process state recovered from the durable store
  };

  Kind kind = Kind::kCrash;
  Duration at = 0;
  std::vector<std::size_t> brokers;
  std::vector<std::vector<std::size_t>> groups;
  std::size_t link_a = 0;
  std::size_t link_b = 0;
  Duration down_for = 0;  // kLinkFlap duty cycle
  Duration up_for = 0;
  /// kRestartCold/kRestartState: `brokers` indexes TDN replicas instead
  /// of the broker overlay.
  bool tdn_target = false;
};

/// Builder for correlated failure schedules. Steps accumulate in call
/// order; the engine sorts by time at compile, so builders may be chained
/// in any order.
class FailureSchedule {
 public:
  // --- primitives -------------------------------------------------------
  FailureSchedule& crash(Duration at, std::vector<std::size_t> brokers);
  FailureSchedule& restart(Duration at, std::vector<std::size_t> brokers);
  FailureSchedule& partition(Duration at,
                             std::vector<std::vector<std::size_t>> groups);
  FailureSchedule& heal(Duration at);
  FailureSchedule& link_blackhole(Duration at, std::size_t a, std::size_t b);
  FailureSchedule& link_restore(Duration at, std::size_t a, std::size_t b);
  /// Durability restarts (DESIGN.md §16): the step is the instant the
  /// process comes back up with its in-memory state gone — cold also
  /// wiped the durable store, with-state recovers from it. Compose with
  /// crash()/restart() for the downtime window itself; the engine routes
  /// these to the restart handler the deployment installs.
  FailureSchedule& restart_cold(Duration at, std::vector<std::size_t> brokers);
  FailureSchedule& restart_with_state(Duration at,
                                      std::vector<std::size_t> brokers);
  /// Same, aimed at TDN replicas (indices into the deployment's replica
  /// set) rather than overlay brokers.
  FailureSchedule& tdn_restart_cold(Duration at,
                                    std::vector<std::size_t> replicas);
  FailureSchedule& tdn_restart_with_state(Duration at,
                                          std::vector<std::size_t> replicas);

  // --- correlated patterns ---------------------------------------------
  /// Rack loss: every broker of `rack` crashes together at `at`.
  /// `outage` > 0 restarts the whole rack at `at + outage`; 0 is a
  /// permanent loss.
  FailureSchedule& rack_loss(Duration at, const std::vector<std::size_t>& rack,
                             Duration outage = 0);
  /// Rolling restart: brokers[i] goes down at `start + i*stagger` and
  /// comes back `down_for` later — the classic deploy wave.
  FailureSchedule& rolling_restart(Duration start,
                                   const std::vector<std::size_t>& brokers,
                                   Duration stagger, Duration down_for);
  /// Flapping link: a<->b cycles down `down_for` / up `up_for` starting
  /// at `start`; `stop` > 0 restores the link for good at `start + stop`.
  FailureSchedule& flapping_link(Duration start, std::size_t a, std::size_t b,
                                 Duration down_for, Duration up_for,
                                 Duration stop = 0);
  /// Cascading partition: groups split off one at a time, every `stagger`
  /// — group[0] isolates at `start`, then group[0]|group[1]|rest, and so
  /// on (each step replaces the previous partition). `heal_after` > 0
  /// heals everything that long after the last split.
  FailureSchedule& cascading_partition(
      Duration start, const std::vector<std::vector<std::size_t>>& groups,
      Duration stagger, Duration heal_after = 0);

  [[nodiscard]] const std::vector<ScheduleStep>& steps() const {
    return steps_;
  }

  /// Deterministic one-line-per-step rendering, in time order — the
  /// determinism tests compare it across runs.
  [[nodiscard]] std::vector<std::string> describe() const;

 private:
  std::vector<ScheduleStep> steps_;
};

/// Executes a schedule against an overlay. One engine per run.
class ScheduleEngine {
 public:
  ScheduleEngine(transport::NetworkBackend& backend, pubsub::Topology& topo);

  ScheduleEngine(const ScheduleEngine&) = delete;
  ScheduleEngine& operator=(const ScheduleEngine&) = delete;

  /// Compiles `schedule` relative to backend.now() and arms one timer per
  /// step. Call once; the engine must outlive the run.
  void run(const FailureSchedule& schedule);

  /// Applies one kRestartCold/kRestartState target: `index` into the TDN
  /// replica set when `tdn_target`, into the broker overlay otherwise.
  /// ScenarioDeployment::attach_restart_handler installs the standard one.
  using StateRestartHandler =
      std::function<void(std::size_t index, bool tdn_target, bool with_state)>;
  void set_restart_handler(StateRestartHandler handler);

  /// Timestamped log of executed actions ("t=<us> <description>"), in
  /// execution order. Identical across same-seed virtual-time runs. Safe
  /// to read from any thread; on RealTimeNetwork read it after stop().
  [[nodiscard]] std::vector<std::string> action_log() const;

 private:
  void apply(const ScheduleStep& s);
  [[nodiscard]] std::string describe_step(const ScheduleStep& s) const;

  transport::NetworkBackend& backend_;
  pubsub::Topology& topo_;
  transport::NodeId node_;
  StateRestartHandler restart_handler_;
  mutable std::mutex mu_;
  std::vector<std::string> log_;
};

}  // namespace et::chaos
