#include "src/chaos/oracle.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace et::chaos {

bool availability_signal(tracing::TraceType t) {
  using tracing::TraceType;
  return t == TraceType::kAllsWell || t == TraceType::kReady ||
         t == TraceType::kJoin || t == TraceType::kInitializing;
}

namespace {

bool suspicion_signal(tracing::TraceType t) {
  using tracing::TraceType;
  return t == TraceType::kFailureSuspicion || t == TraceType::kFailed ||
         t == TraceType::kDisconnect;
}

// First evidence a tracker gets of a failure episode. Suspicion traces
// cover unresponsive-entity failures; RECOVERING covers hosting-broker
// loss, where no broker is alive to publish a suspicion and the episode
// surfaces only through the entity's post-failover announcement.
bool detection_signal(tracing::TraceType t) {
  return suspicion_signal(t) || t == tracing::TraceType::kRecovering;
}

}  // namespace

double OracleReport::max_detection_latency_us() const {
  double out = 0.0;
  for (const auto& p : pairs) {
    out = std::max(out, p.max_detection_latency_us);
  }
  return out;
}

double OracleReport::mean_detection_latency_us() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& p : pairs) {
    if (p.detected_down_edges == 0) continue;
    sum += p.mean_detection_latency_us *
           static_cast<double>(p.detected_down_edges);
    n += p.detected_down_edges;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::size_t OracleReport::false_suspicions() const {
  std::size_t out = 0;
  for (const auto& p : pairs) out += p.false_suspicions;
  return out;
}

double OracleReport::mean_availability_error() const {
  if (pairs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& p : pairs) sum += p.availability_error;
  return sum / static_cast<double>(pairs.size());
}

tracing::Tracker::TraceHandler AvailabilityOracle::tap(
    const std::string& tracker_id, const std::string& entity_id,
    transport::NetworkBackend& backend, tracing::Tracker::TraceHandler inner) {
  return [this, tracker_id, entity_id, &backend,
          inner = std::move(inner)](const tracing::TracePayload& p,
                                    const pubsub::Message& m) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pairs_[{tracker_id, entity_id}].observed.push_back(
          {backend.now(), p.type, p.issued_at});
    }
    if (inner) inner(p, m);
  };
}

std::vector<AvailabilityOracle::ObservedEvent>
AvailabilityOracle::observed_events(const std::string& tracker_id,
                                    const std::string& entity_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObservedEvent> out;
  const auto it = pairs_.find({tracker_id, entity_id});
  if (it == pairs_.end()) return out;
  out.reserve(it->second.observed.size());
  for (const Observation& o : it->second.observed) {
    out.push_back({o.at, o.issued_at, o.type});
  }
  return out;
}

void AvailabilityOracle::set_truth(const std::string& tracker_id,
                                   const std::string& entity_id, bool up,
                                   TimePoint at) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& truth = pairs_[{tracker_id, entity_id}].truth;
  if (!truth.empty() && truth.back().up == up) return;
  truth.push_back({at, up});
}

void AvailabilityOracle::note_failover(const std::string& entity_id,
                                       std::uint64_t count, TimePoint at) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& fo = failovers_[entity_id];
  if (!fo.empty() && fo.back().count >= count) return;
  fo.push_back({count, at});
}

std::vector<std::string> AvailabilityOracle::timeline() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [key, pair] : pairs_) {
    const std::string head = key.first + "/" + key.second + " t=";
    // Merge truth edges and observations by time; truth sorts first at
    // equal instants (it was set by the scenario before the slice ran).
    std::size_t ti = 0;
    std::size_t oi = 0;
    while (ti < pair.truth.size() || oi < pair.observed.size()) {
      const bool take_truth =
          oi >= pair.observed.size() ||
          (ti < pair.truth.size() &&
           pair.truth[ti].at <= pair.observed[oi].at);
      if (take_truth) {
        out.push_back(head + std::to_string(pair.truth[ti].at) +
                      " truth=" + (pair.truth[ti].up ? "up" : "down"));
        ++ti;
      } else {
        out.push_back(
            head + std::to_string(pair.observed[oi].at) + " obs=" +
            std::string(trace_type_name(pair.observed[oi].type)));
        ++oi;
      }
    }
  }
  return out;
}

OracleReport AvailabilityOracle::report(TimePoint end, Duration grace) const {
  std::lock_guard<std::mutex> lock(mu_);
  OracleReport out;
  for (const auto& [key, pair] : pairs_) {
    PairReport r;
    r.tracker_id = key.first;
    r.entity_id = key.second;

    // Integrates truth up-time over [from, end].
    auto truth_up_fraction = [&](TimePoint from) -> double {
      if (end <= from || pair.truth.empty()) return 0.0;
      Duration up_time = 0;
      for (std::size_t i = 0; i < pair.truth.size(); ++i) {
        if (!pair.truth[i].up) continue;
        const TimePoint seg_start = std::max(pair.truth[i].at, from);
        const TimePoint seg_end = i + 1 < pair.truth.size()
                                      ? std::min(pair.truth[i + 1].at, end)
                                      : end;
        if (seg_end > seg_start) up_time += seg_end - seg_start;
      }
      return static_cast<double>(up_time) / static_cast<double>(end - from);
    };

    // True when truth was continuously up over [t - grace, t].
    auto solidly_up = [&](TimePoint t) -> bool {
      bool up = true;  // before the first sample the pair is nominal
      for (const auto& e : pair.truth) {
        if (e.at > t) break;
        up = e.up;
        if (!e.up && e.at > t - grace) return false;
      }
      return up;
    };

    // Detection latency per truth down-edge. The window for attributing
    // a detection signal runs until the *next* down-edge (or `end`):
    // suspicion traces land during the outage, while a RECOVERING after
    // the heal still unambiguously reports the previous episode.
    for (std::size_t i = 0; i < pair.truth.size(); ++i) {
      if (pair.truth[i].up) continue;
      if (i == 0) continue;  // no preceding up state: not an edge
      const TimePoint down_at = pair.truth[i].at;
      // Truth entries alternate after collapsing, so the next down-edge
      // (if any) is at i + 2.
      const TimePoint window_end =
          i + 2 < pair.truth.size() ? pair.truth[i + 2].at : end;
      ++r.truth_down_edges;
      for (const auto& o : pair.observed) {
        if (o.at < down_at || !detection_signal(o.type)) continue;
        if (o.at >= window_end) break;
        const double latency = static_cast<double>(o.at - down_at);
        ++r.detected_down_edges;
        r.mean_detection_latency_us += latency;
        r.max_detection_latency_us =
            std::max(r.max_detection_latency_us, latency);
        break;
      }
    }
    if (r.detected_down_edges > 0) {
      r.mean_detection_latency_us /=
          static_cast<double>(r.detected_down_edges);
    }

    // Suspicion accounting.
    for (const auto& o : pair.observed) {
      if (!suspicion_signal(o.type)) continue;
      ++r.suspicion_signals;
      if (solidly_up(o.at)) ++r.false_suspicions;
    }

    // Availability: observed state machine starts at the first
    // availability/suspicion signal; types that carry no liveness verdict
    // (load, metrics, gauge) leave the state unchanged.
    TimePoint obs_start = 0;
    bool have_obs = false;
    bool obs_up = false;
    Duration obs_up_time = 0;
    TimePoint last_change = 0;
    for (const auto& o : pair.observed) {
      const bool up_sig = availability_signal(o.type);
      const bool down_sig = suspicion_signal(o.type);
      if (!up_sig && !down_sig) continue;
      if (!have_obs) {
        have_obs = true;
        obs_start = o.at;
        obs_up = up_sig;
        last_change = o.at;
        continue;
      }
      if (up_sig == obs_up) continue;
      if (obs_up) obs_up_time += o.at - last_change;
      obs_up = up_sig;
      last_change = o.at;
    }
    if (have_obs && end > obs_start) {
      if (obs_up && end > last_change) obs_up_time += end - last_change;
      r.observed_availability = static_cast<double>(obs_up_time) /
                                static_cast<double>(end - obs_start);
      r.truth_availability = truth_up_fraction(
          pair.truth.empty() ? obs_start : pair.truth.front().at);
      const double truth_same_window = truth_up_fraction(obs_start);
      r.availability_error =
          std::abs(r.observed_availability - truth_same_window);
    } else if (!pair.truth.empty()) {
      r.truth_availability = truth_up_fraction(pair.truth.front().at);
    }

    out.pairs.push_back(std::move(r));
  }
  return out;
}

OracleReport AvailabilityOracle::report_window(TimePoint begin, TimePoint end,
                                               Duration grace) const {
  std::lock_guard<std::mutex> lock(mu_);
  OracleReport out;
  if (end <= begin) return out;
  const double window = static_cast<double>(end - begin);
  for (const auto& [key, pair] : pairs_) {
    PairReport r;
    r.tracker_id = key.first;
    r.entity_id = key.second;

    // Truth up-fraction over [begin, end], state carried in from the last
    // edge at or before `begin` (nominal up when none).
    {
      bool up = true;
      TimePoint mark = begin;
      Duration up_time = 0;
      for (const auto& e : pair.truth) {
        if (e.at <= begin) {
          up = e.up;
          continue;
        }
        if (e.at >= end) break;
        if (up) up_time += e.at - mark;
        up = e.up;
        mark = e.at;
      }
      if (up) up_time += end - mark;
      r.truth_availability = static_cast<double>(up_time) / window;
    }

    // Observed up-fraction over the same window, state carried in from
    // the last availability/suspicion signal at or before `begin`. A pair
    // with no signal by `end` reports observed 0 against truth (a tracker
    // that has heard nothing has not observed availability).
    {
      bool have_obs = false;
      bool up = false;
      TimePoint mark = begin;
      Duration up_time = 0;
      for (const auto& o : pair.observed) {
        const bool up_sig = availability_signal(o.type);
        const bool down_sig = suspicion_signal(o.type);
        if (!up_sig && !down_sig) continue;
        if (o.at <= begin) {
          have_obs = true;
          up = up_sig;
          continue;
        }
        if (o.at >= end) break;
        if (have_obs && up_sig == up) continue;
        if (up) up_time += o.at - mark;
        have_obs = true;
        up = up_sig;
        mark = o.at;
      }
      if (up) up_time += end - mark;
      r.observed_availability = static_cast<double>(up_time) / window;
    }
    r.availability_error =
        std::abs(r.observed_availability - r.truth_availability);

    // Suspicion accounting within the window (same grace rule as
    // report(): a suspicion is false only when truth was continuously up
    // over [t - grace, t]).
    for (const auto& o : pair.observed) {
      if (o.at <= begin || o.at >= end || !suspicion_signal(o.type)) continue;
      ++r.suspicion_signals;
      bool up = true;
      bool solid = true;
      for (const auto& e : pair.truth) {
        if (e.at > o.at) break;
        up = e.up;
        if (!e.up && e.at > o.at - grace) solid = false;
      }
      if (up && solid) ++r.false_suspicions;
    }

    out.pairs.push_back(std::move(r));
  }
  return out;
}

std::vector<std::string> AvailabilityOracle::check_invariants(
    Duration detection_bound, Duration grace) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [key, pair] : pairs_) {
    const std::string head = key.first + "/" + key.second + ": ";

    // I1: no availability signal while truth has been down longer than
    // the detection bound plus grace.
    for (const auto& o : pair.observed) {
      if (!availability_signal(o.type)) continue;
      bool up = true;
      TimePoint down_since = 0;
      for (const auto& e : pair.truth) {
        if (e.at > o.at) break;
        up = e.up;
        down_since = e.at;
      }
      if (!up && o.at - down_since > detection_bound + grace) {
        out.push_back(head + "I1: " +
                      std::string(trace_type_name(o.type)) + " at t=" +
                      std::to_string(o.at) + " but truth down since t=" +
                      std::to_string(down_since));
      }
    }

    // I2: the r-th RECOVERING trace needs >= r real failovers by then.
    auto fit = failovers_.find(key.second);
    std::uint64_t rec_seen = 0;
    for (const auto& o : pair.observed) {
      if (o.type != tracing::TraceType::kRecovering) continue;
      ++rec_seen;
      bool backed = false;
      if (fit != failovers_.end()) {
        for (const auto& f : fit->second) {
          if (f.count >= rec_seen && f.at <= o.at + grace) {
            backed = true;
            break;
          }
        }
      }
      if (!backed) {
        out.push_back(head + "I2: RECOVERING #" +
                      std::to_string(rec_seen) + " at t=" +
                      std::to_string(o.at) +
                      " has no backing failover");
      }
    }
  }
  return out;
}

}  // namespace et::chaos
