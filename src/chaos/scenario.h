// Parameterized chaos deployments: overlay shape x tracing stack x TDN
// replica set, plus the ground-truth reachability the oracle needs.
//
// A `ScenarioDeployment` stands up a complete tracing system on either
// backend: a CA, `tdn_replicas` TDNs sharing one signing keypair (the
// TrustAnchors carry a single tdn_key, mirroring the paper's model of
// TDN replicas as one logical service), a broker overlay built from an
// `OverlaySpec`, tracing services + trace filters on every broker, and
// factory methods for traced entities and trackers using one shared
// long-term keypair (CA enrolment is one signature per identity, which
// is what keeps 128-broker scenarios affordable).
//
// Ground truth: `reachable(t, e, now)` runs a BFS over the peered overlay
// edges, asking the backend's FaultInjector whether each hop is currently
// severed — the same cut() predicate both backends consult at delivery
// time, so truth and behaviour can never disagree about the fault plan.
// `sample_truth` feeds that into an AvailabilityOracle for every
// (tracker, entity) pair; scenarios call it once per time slice.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/chaos/oracle.h"
#include "src/chaos/schedule.h"
#include "src/crypto/credential.h"
#include "src/persist/ledger.h"
#include "src/discovery/discovery_client.h"
#include "src/discovery/tdn.h"
#include "src/pubsub/overlay_repair.h"
#include "src/pubsub/topology.h"
#include "src/tracing/config.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/traced_entity.h"
#include "src/tracing/tracing_broker.h"
#include "src/tracing/tracker.h"
#include "src/transport/network.h"

namespace et::chaos {

/// Overlay shape + size for one scenario cell.
struct OverlaySpec {
  enum class Shape : std::uint8_t {
    kChain,       // maximal diameter
    kRing,        // spanning chain + standby closing link
    kTree,        // balanced arity-ary tree: logarithmic diameter
    kClusters,    // cluster-of-stars racks behind a core chain
    kRandomTree,  // degree-bounded random attachment
  };

  Shape shape = Shape::kChain;
  std::size_t brokers = 8;          // total broker budget
  std::size_t arity = 2;            // kTree fan-out
  std::size_t leaves_per_core = 3;  // kClusters rack size; core count is
                                    // brokers / (1 + leaves_per_core)
  std::size_t max_degree = 4;       // kRandomTree degree bound
  std::uint64_t shape_seed = 1;     // kRandomTree attachment seed

  [[nodiscard]] std::string describe() const;
};

/// Tracing configuration tuned for chaos runs: fast pings, bounded
/// escalation, broker-silence failover armed, retries on discovery.
[[nodiscard]] tracing::TracingConfig chaos_config();

/// Worst-case failure-detection bound for a config: the silence a broker
/// tolerates before escalating to DISCONNECT, plus the entity-side
/// broker-silence window (whichever path applies, this covers it).
[[nodiscard]] Duration detection_bound(const tracing::TracingConfig& c);

class ScenarioDeployment {
 public:
  /// Self-healing overlay knobs (DESIGN.md §15). When enabled, every
  /// broker runs an OverlayRepairService and the deployment owns one
  /// RepairPolicy seeded from Options::seed — same-seed virtual-time runs
  /// produce byte-identical repair action logs.
  struct RepairOptions {
    bool enabled = false;
    bool activate_standby = true;  // prefer pre-provisioned standby links
    bool repeer = true;            // gossip-scored fresh edges as fallback
    pubsub::OverlayRepairService::Options service;
  };

  /// Durable-state knobs (DESIGN.md §16). When enabled, every TDN
  /// replica gets a snapshot+WAL store, every broker a misbehaviour
  /// store, and every broker's trace emission path a tamper-evident
  /// TraceLedger — the substrate the restart-with-state / restart-cold
  /// schedule steps and the audit-after-partition check operate on.
  struct DurabilityOptions {
    bool enabled = false;
    /// State directory; empty = a fresh per-deployment temp directory,
    /// removed with the deployment.
    std::string dir;
    persist::FsyncPolicy fsync = persist::FsyncPolicy::kNever;
  };

  struct Options {
    OverlaySpec overlay;
    tracing::TracingConfig config = chaos_config();
    std::size_t tdn_replicas = 1;
    std::uint64_t seed = 1234;
    std::size_t key_bits = 512;  // protocol logic is key-size independent
    /// Per-packet loss probability on broker-broker overlay links only
    /// (client and TDN links keep the ideal profile); > 0 marks those
    /// links unreliable so the loss actually drops packets. Repair edges
    /// inherit the same lossy profile.
    double overlay_loss = 0.0;
    RepairOptions repair;
    DurabilityOptions durability;
  };

  ScenarioDeployment(transport::NetworkBackend& backend, Options opts);
  ~ScenarioDeployment();

  ScenarioDeployment(const ScenarioDeployment&) = delete;
  ScenarioDeployment& operator=(const ScenarioDeployment&) = delete;

  /// Low-latency LAN link profile used for every scenario link.
  [[nodiscard]] static transport::LinkParams link();

  /// Identity backed by the shared keypair (one CA signature).
  [[nodiscard]] crypto::Identity make_identity(const std::string& id);

  /// Entity homed on broker `broker_index`, attached to every TDN.
  tracing::TracedEntity& add_entity(const std::string& id,
                                    std::size_t broker_index);
  /// Tracker homed on broker `broker_index`, attached to every TDN.
  tracing::Tracker& add_tracker(const std::string& id,
                                std::size_t broker_index);

  // --- ground truth -----------------------------------------------------

  /// True when tracker `t` can currently exchange packets with entity
  /// `e`: tracker -> home broker -> overlay path -> entity's *current*
  /// hosting broker -> entity, with no hop severed by the fault plan.
  [[nodiscard]] bool reachable(std::size_t tracker_index,
                               std::size_t entity_index, TimePoint now);

  /// Records truth for every (tracker, entity) pair and the entities'
  /// failover counters. Call once per time slice, from the driving
  /// thread on VirtualTimeNetwork; on RealTimeNetwork reading entity
  /// state mid-run is racy, so RT scenarios sample only static truth
  /// (see reachable_static below).
  void sample_truth(AvailabilityOracle& oracle, TimePoint now);

  /// Like reachable(), but assumes entities never left their home broker
  /// (no failover). Safe on RealTimeNetwork while actors run, because it
  /// reads only the immutable home-broker table and the fault plan.
  [[nodiscard]] bool reachable_static(std::size_t tracker_index,
                                      std::size_t entity_index,
                                      TimePoint now) const;
  void sample_truth_static(AvailabilityOracle& oracle, TimePoint now) const;

  // --- accessors --------------------------------------------------------

  [[nodiscard]] pubsub::Topology& topology() { return *topology_; }
  [[nodiscard]] std::size_t broker_count() const { return brokers_.size(); }
  [[nodiscard]] pubsub::Broker& broker(std::size_t i) { return *brokers_[i]; }
  [[nodiscard]] std::size_t tdn_count() const { return tdns_.size(); }
  [[nodiscard]] discovery::Tdn& tdn(std::size_t i) { return *tdns_.at(i); }
  [[nodiscard]] const tracing::TrustAnchors& anchors() const {
    return anchors_;
  }
  [[nodiscard]] const tracing::TracingConfig& config() const {
    return config_;
  }
  [[nodiscard]] std::size_t entity_count() const { return entities_.size(); }
  [[nodiscard]] tracing::TracedEntity& entity(std::size_t i) {
    return *entities_.at(i);
  }
  [[nodiscard]] std::size_t tracker_count() const { return trackers_.size(); }
  [[nodiscard]] tracing::Tracker& tracker(std::size_t i) {
    return *trackers_.at(i);
  }
  /// Broker indices of rack `r` (kClusters shapes only): the core plus
  /// its leaves — the unit a rack_loss schedule takes down.
  [[nodiscard]] std::vector<std::size_t> rack(std::size_t r) const;
  [[nodiscard]] std::size_t rack_count() const { return racks_.size(); }

  /// Deployment-wide repair decision maker; null unless
  /// Options::repair.enabled.
  [[nodiscard]] pubsub::RepairPolicy* repair_policy() {
    return repair_policy_.get();
  }
  /// Broker `i`'s liveness detector (repair-enabled deployments only).
  [[nodiscard]] pubsub::OverlayRepairService& repair_service(std::size_t i) {
    return *repair_services_.at(i);
  }

  /// Enrolls every broker with every TDN replica; the caller must settle
  /// the network afterwards (run_for / sleep) before failover relies on
  /// the registry.
  void register_brokers();

  // --- durability (Options::durability.enabled only) --------------------

  [[nodiscard]] bool durable() const { return !durability_dir_.empty(); }
  [[nodiscard]] const std::string& durability_dir() const {
    return durability_dir_;
  }
  /// Broker `i`'s tamper-evident trace ledger.
  [[nodiscard]] persist::TraceLedger& ledger(std::size_t i) {
    return *ledgers_.at(i);
  }

  /// Posts a state restart into the target's node context: in-memory
  /// state dropped, then recovered from the durable store (`with_state`)
  /// or wiped entirely (cold). Settle the network before asserting on
  /// the result.
  void restart_tdn_state(std::size_t i, bool with_state);
  void restart_broker_state(std::size_t i, bool with_state);

  /// Installs the standard restart handler: kRestartCold/kRestartState
  /// steps route here and land on the TDN replica or broker they index.
  void attach_restart_handler(ScheduleEngine& engine);

  /// The audit-after-partition check: verifies every broker ledger's
  /// hash chain, then replays the ledgers against the oracle's observed
  /// timelines — every trace a tracker saw must exist in some hosting
  /// broker's chain with the same type and issued_at stamp (no phantom
  /// history), and per (tracker, entity) the issued_at stamps must be
  /// non-decreasing (no reordered history). Returns violation lines,
  /// empty = audit clean.
  [[nodiscard]] std::vector<std::string> audit_ledgers(
      const AvailabilityOracle& oracle) const;

 private:
  [[nodiscard]] std::size_t broker_index_of(transport::NodeId node) const;

  transport::NetworkBackend& backend_;
  tracing::TracingConfig config_;
  std::size_t key_bits_;
  Rng rng_;
  crypto::CertificateAuthority ca_;
  crypto::RsaKeyPair shared_keys_;
  tracing::TrustAnchors anchors_;
  std::string durability_dir_;
  bool owns_durability_dir_ = false;
  persist::FsyncPolicy durability_fsync_ = persist::FsyncPolicy::kNever;
  /// Declared before the services that append to them.
  std::vector<std::unique_ptr<persist::TraceLedger>> ledgers_;
  std::vector<std::unique_ptr<discovery::Tdn>> tdns_;
  std::unique_ptr<pubsub::Topology> topology_;
  std::vector<pubsub::Broker*> brokers_;
  std::vector<std::unique_ptr<tracing::TracingBrokerService>> services_;
  std::vector<tracing::TraceFilterHandle> filters_;
  std::unique_ptr<discovery::DiscoveryClient> registrar_;
  std::vector<std::vector<std::size_t>> racks_;  // kClusters only

  std::vector<std::unique_ptr<tracing::TracedEntity>> entities_;
  std::vector<std::size_t> entity_home_;  // broker index at creation
  std::vector<std::unique_ptr<tracing::Tracker>> trackers_;
  std::vector<std::size_t> tracker_home_;
  std::vector<std::uint64_t> last_failovers_;  // per entity, for sampling

  // Declared last: the repair services hold callbacks installed into the
  // brokers above, so they must be destroyed first.
  std::unique_ptr<pubsub::RepairPolicy> repair_policy_;
  std::vector<std::unique_ptr<pubsub::OverlayRepairService>> repair_services_;
};

}  // namespace et::chaos
