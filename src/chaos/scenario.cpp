#include "src/chaos/scenario.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <queue>
#include <set>
#include <stdexcept>

#include "src/common/serialize.h"
#include "src/tracing/trace_digest.h"
#include "src/transport/fault_injector.h"

namespace et::chaos {

std::string OverlaySpec::describe() const {
  switch (shape) {
    case Shape::kChain:
      return "chain-" + std::to_string(brokers);
    case Shape::kRing:
      return "ring-" + std::to_string(brokers);
    case Shape::kTree:
      return "tree" + std::to_string(arity) + "-" +
             std::to_string(brokers);
    case Shape::kClusters:
      return "clusters" + std::to_string(leaves_per_core) + "-" +
             std::to_string(brokers);
    case Shape::kRandomTree:
      return "random" + std::to_string(max_degree) + "-" +
             std::to_string(brokers);
  }
  return "?";
}

tracing::TracingConfig chaos_config() {
  tracing::TracingConfig c;
  c.ping_interval = 100 * kMillisecond;
  c.min_ping_interval = 20 * kMillisecond;
  c.gauge_interval = 300 * kMillisecond;
  c.metrics_interval = 250 * kMillisecond;
  c.delegate_key_bits = 512;
  c.suspicion_misses = 3;
  c.failed_misses = 6;
  c.disconnect_misses = 9;
  c.broker_silence_timeout = 600 * kMillisecond;
  RetryPolicy r;
  r.max_attempts = 0;  // an availability reporter never gives up
  r.initial_backoff = 50 * kMillisecond;
  r.max_backoff = 400 * kMillisecond;
  r.deadline = 10 * kSecond;
  c.retry = r;
  c.recovery_announce_delay = 700 * kMillisecond;
  return c;
}

Duration detection_bound(const tracing::TracingConfig& c) {
  const int misses =
      c.disconnect_misses > 0 ? c.disconnect_misses : c.failed_misses;
  const Duration broker_side =
      static_cast<Duration>(misses) * c.ping_interval;
  return std::max(broker_side, c.broker_silence_timeout);
}

transport::LinkParams ScenarioDeployment::link() {
  transport::LinkParams p = transport::LinkParams::ideal_profile();
  p.base_latency = 1 * kMillisecond;
  return p;
}

ScenarioDeployment::ScenarioDeployment(transport::NetworkBackend& backend,
                                       Options opts)
    : backend_(backend),
      config_(opts.config),
      key_bits_(opts.key_bits),
      rng_(opts.seed),
      ca_("chaos-ca", rng_, key_bits_),
      // One long-term keypair shared by every scenario identity: CA
      // enrolment is one signature, which is what makes 128-broker
      // overlays build in test time.
      shared_keys_(crypto::rsa_generate(rng_, key_bits_)) {
  config_.delegate_key_bits = key_bits_;

  if (opts.durability.enabled) {
    durability_fsync_ = opts.durability.fsync;
    durability_dir_ = opts.durability.dir;
    if (durability_dir_.empty()) {
      // Unique per deployment instance: two same-seed runs must not share
      // (and thus cross-recover) state directories.
      static std::atomic<std::uint64_t> counter{0};
      durability_dir_ =
          (std::filesystem::temp_directory_path() /
           ("et-chaos-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1))))
              .string();
      owns_durability_dir_ = true;
    }
    std::filesystem::create_directories(durability_dir_);
  }

  // TDN replicas share one signing keypair: the TrustAnchors carry a
  // single tdn_key, so the replica set presents as one logical service.
  const crypto::RsaKeyPair tdn_keys = crypto::rsa_generate(rng_, key_bits_);
  anchors_.ca_key = ca_.public_key();
  anchors_.tdn_key = tdn_keys.public_key;
  const std::size_t replicas = std::max<std::size_t>(1, opts.tdn_replicas);
  for (std::size_t i = 0; i < replicas; ++i) {
    discovery::Tdn::Options to;
    to.identity.id = "tdn-" + std::to_string(i);
    to.identity.keys = tdn_keys;
    to.identity.credential = ca_.issue(to.identity.id, tdn_keys.public_key,
                                       backend_.now(), 24 * 3600 * kSecond);
    to.ca_key = ca_.public_key();
    to.seed = opts.seed + 1 + i;
    if (durable()) {
      to.persist_dir = durability_dir_ + "/tdn-" + std::to_string(i);
      to.fsync = durability_fsync_;
    }
    tdns_.push_back(
        std::make_unique<discovery::Tdn>(backend_, std::move(to)));
  }
  // Full-mesh replication links between the replicas.
  for (std::size_t i = 0; i < tdns_.size(); ++i) {
    for (std::size_t j = i + 1; j < tdns_.size(); ++j) {
      backend_.link(tdns_[i]->node(), tdns_[j]->node(), link());
      tdns_[i]->peer(tdns_[j]->node());
      tdns_[j]->peer(tdns_[i]->node());
    }
  }

  topology_ = std::make_unique<pubsub::Topology>(backend_);
  // Overlay links (broker-broker only) optionally carry loss; a reliable
  // link never drops, so lossy overlays must also flip reliable off.
  transport::LinkParams overlay_link = link();
  if (opts.overlay_loss > 0.0) {
    overlay_link.loss_probability = opts.overlay_loss;
    overlay_link.reliable = false;
  }
  const pubsub::BrokerOptionsFn brokeropts = [&](const std::string& name) {
    pubsub::Broker::Options o;
    o.name = name;
    if (durable()) {
      o.misbehaviour_persist_dir = durability_dir_ + "/broker-" + name;
      o.misbehaviour_fsync = durability_fsync_;
    }
    filters_.push_back(
        tracing::install_trace_filter(o, anchors_, backend_, config_));
    return o;
  };
  const OverlaySpec& ov = opts.overlay;
  switch (ov.shape) {
    case OverlaySpec::Shape::kChain:
      brokers_ = topology_->make_chain(ov.brokers, overlay_link, "broker",
                                       brokeropts);
      break;
    case OverlaySpec::Shape::kRing:
      brokers_ = topology_->make_ring(ov.brokers, overlay_link, "broker",
                                      brokeropts);
      break;
    case OverlaySpec::Shape::kTree:
      brokers_ = topology_->make_tree(ov.brokers, ov.arity, overlay_link,
                                      "broker", brokeropts);
      break;
    case OverlaySpec::Shape::kClusters: {
      const std::size_t cores = std::max<std::size_t>(
          1, ov.brokers / (1 + ov.leaves_per_core));
      brokers_ = topology_->make_clusters(cores, ov.leaves_per_core,
                                          overlay_link, "broker", brokeropts);
      for (std::size_t c = 0; c < cores; ++c) {
        std::vector<std::size_t> rack{c};
        for (std::size_t l = 0; l < ov.leaves_per_core; ++l) {
          rack.push_back(cores + c * ov.leaves_per_core + l);
        }
        racks_.push_back(std::move(rack));
      }
      break;
    }
    case OverlaySpec::Shape::kRandomTree:
      brokers_ = topology_->make_random_tree(ov.brokers, ov.max_degree,
                                             ov.shape_seed, overlay_link,
                                             "broker", brokeropts);
      break;
  }
  for (std::size_t i = 0; i < brokers_.size(); ++i) {
    services_.push_back(std::make_unique<tracing::TracingBrokerService>(
        *brokers_[i], anchors_, config_, opts.seed + 100 + i));
    if (durable()) {
      persist::TraceLedger::Options lo;
      lo.path = durability_dir_ + "/ledger-" + brokers_[i]->name() + ".log";
      lo.fsync = durability_fsync_;
      ledgers_.push_back(std::make_unique<persist::TraceLedger>(lo));
      services_[i]->set_trace_ledger(ledgers_[i].get());
    }
  }
  if (opts.repair.enabled) {
    pubsub::RepairPolicy::Options po;
    po.activate_standby = opts.repair.activate_standby;
    po.repeer = opts.repair.repeer;
    po.seed = opts.seed;
    po.link_params = overlay_link;  // repair edges are no better than the
                                    // overlay they patch
    // Lossy overlays drop interest announces too; extra anti-entropy
    // rounds give the post-repair re-flood per-hop retries.
    if (opts.overlay_loss > 0.0) po.resync_rounds = 5;
    repair_policy_ = std::make_unique<pubsub::RepairPolicy>(
        backend_, *topology_, po);
    for (std::size_t i = 0; i < brokers_.size(); ++i) {
      repair_services_.push_back(
          std::make_unique<pubsub::OverlayRepairService>(
              *brokers_[i], repair_policy_.get(), opts.repair.service));
      repair_policy_->attach(i, *brokers_[i], *repair_services_[i]);
      repair_services_[i]->start();
    }
  }
}

ScenarioDeployment::~ScenarioDeployment() {
  if (owns_durability_dir_) {
    // Close the stores (they hold fds into the tree) before removing it.
    for (auto& t : tdns_) t->simulate_restart(/*with_state=*/false);
    ledgers_.clear();
    std::error_code ec;
    std::filesystem::remove_all(durability_dir_, ec);
  }
}

void ScenarioDeployment::restart_tdn_state(std::size_t i, bool with_state) {
  discovery::Tdn& t = *tdns_.at(i);
  backend_.post(t.node(),
                [&t, with_state] { t.simulate_restart(with_state); });
}

void ScenarioDeployment::restart_broker_state(std::size_t i,
                                              bool with_state) {
  pubsub::Broker& b = *brokers_.at(i);
  backend_.post(b.node(), [&b, with_state] {
    b.restart_misbehaviour_state(with_state);
  });
}

void ScenarioDeployment::attach_restart_handler(ScheduleEngine& engine) {
  engine.set_restart_handler(
      [this](std::size_t index, bool tdn_target, bool with_state) {
        if (tdn_target) {
          restart_tdn_state(index, with_state);
        } else {
          restart_broker_state(index, with_state);
        }
      });
}

std::vector<std::string> ScenarioDeployment::audit_ledgers(
    const AvailabilityOracle& oracle) const {
  std::vector<std::string> out;
  if (ledgers_.empty()) {
    out.push_back("audit_ledgers: durability disabled, nothing to audit");
    return out;
  }
  // 1. Chain integrity: every broker's per-topic chains must verify.
  for (std::size_t i = 0; i < ledgers_.size(); ++i) {
    for (const std::string& v :
         persist::LedgerAuditor::verify_all(*ledgers_[i])) {
      out.push_back(brokers_[i]->name() + ": " + v);
    }
  }
  // 2. Observed ⊆ ledgered: every trace a tracker saw must exist in some
  // hosting broker's chain (an entity fails over, so its history may
  // spread across several brokers' ledgers), keyed by (type, issued_at).
  // Digest records vouch for their entries at the digest's stamp.
  for (const auto& entity : entities_) {
    const std::string& eid = entity->entity_id();
    std::set<std::pair<std::uint8_t, TimePoint>> ledgered;
    for (const auto& ledger : ledgers_) {
      for (const std::string& topic : ledger->topics()) {
        for (const persist::LedgerRecord& r : ledger->records(topic)) {
          if (r.entity_id == eid) {
            ledgered.insert({r.trace_type, r.issued_at});
          }
          if (r.trace_type ==
              static_cast<std::uint8_t>(tracing::TraceType::kDigest)) {
            try {
              const tracing::TraceDigest d =
                  tracing::TraceDigest::deserialize(r.payload);
              for (const tracing::DigestEntry& de : d.entries) {
                if (de.entity_id == eid) {
                  ledgered.insert(
                      {static_cast<std::uint8_t>(de.type), d.issued_at});
                }
              }
            } catch (const SerializeError&) {
              out.push_back("undecodable digest payload in ledger topic " +
                            topic);
            }
          }
        }
      }
    }
    for (const auto& tracker : trackers_) {
      const auto events =
          oracle.observed_events(tracker->tracker_id(), eid);
      TimePoint last_issued = 0;
      for (const auto& ev : events) {
        if (!ledgered.contains(
                {static_cast<std::uint8_t>(ev.type), ev.issued_at})) {
          out.push_back("phantom trace: " + tracker->tracker_id() + "/" +
                        eid + " observed " +
                        std::string(tracing::trace_type_name(ev.type)) +
                        " issued_at=" + std::to_string(ev.issued_at) +
                        " absent from every ledger");
        }
        if (ev.issued_at < last_issued) {
          out.push_back("reordered trace: " + tracker->tracker_id() + "/" +
                        eid + " observed " +
                        std::string(tracing::trace_type_name(ev.type)) +
                        " issued_at=" + std::to_string(ev.issued_at) +
                        " after issued_at=" + std::to_string(last_issued));
        }
        last_issued = std::max(last_issued, ev.issued_at);
      }
    }
  }
  return out;
}

crypto::Identity ScenarioDeployment::make_identity(const std::string& id) {
  crypto::Identity ident;
  ident.id = id;
  ident.keys = shared_keys_;
  ident.credential = ca_.issue(id, shared_keys_.public_key, backend_.now(),
                               24 * 3600 * kSecond);
  return ident;
}

void ScenarioDeployment::register_brokers() {
  registrar_ = std::make_unique<discovery::DiscoveryClient>(
      backend_, make_identity("registrar"));
  for (const auto& tdn : tdns_) {
    registrar_->attach_tdn(tdn->node(), link());
  }
  for (pubsub::Broker* b : brokers_) {
    registrar_->register_broker(b->name(), b->node(),
                                make_identity(b->name()).credential);
  }
}

tracing::TracedEntity& ScenarioDeployment::add_entity(
    const std::string& id, std::size_t broker_index) {
  auto e = std::make_unique<tracing::TracedEntity>(
      backend_, make_identity(id), anchors_, config_, rng_.next_u64());
  for (const auto& tdn : tdns_) e->attach_tdn(tdn->node(), link());
  e->connect_broker(brokers_.at(broker_index)->node(), link());
  entities_.push_back(std::move(e));
  entity_home_.push_back(broker_index);
  last_failovers_.push_back(0);
  return *entities_.back();
}

tracing::Tracker& ScenarioDeployment::add_tracker(const std::string& id,
                                                  std::size_t broker_index) {
  auto t = std::make_unique<tracing::Tracker>(backend_, make_identity(id),
                                              anchors_, rng_.next_u64());
  for (const auto& tdn : tdns_) t->attach_tdn(tdn->node(), link());
  t->connect_broker(brokers_.at(broker_index)->node(), link());
  trackers_.push_back(std::move(t));
  tracker_home_.push_back(broker_index);
  return *trackers_.back();
}

std::size_t ScenarioDeployment::broker_index_of(
    transport::NodeId node) const {
  for (std::size_t i = 0; i < brokers_.size(); ++i) {
    if (brokers_[i]->node() == node) return i;
  }
  return SIZE_MAX;
}

namespace {

/// BFS over the peered overlay using only hops the fault plan currently
/// lets packets through.
bool overlay_path(const std::vector<pubsub::Broker*>& brokers,
                  const std::vector<std::pair<std::size_t, std::size_t>>&
                      edges,
                  const transport::FaultInjector& faults, std::size_t from,
                  std::size_t to, TimePoint now) {
  if (from == to) return !faults.cut(brokers[from]->node(),
                                     brokers[from]->node(), now);
  std::vector<std::vector<std::size_t>> adj(brokers.size());
  for (const auto& [a, b] : edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<bool> seen(brokers.size(), false);
  std::queue<std::size_t> q;
  seen[from] = true;
  q.push(from);
  while (!q.empty()) {
    const std::size_t u = q.front();
    q.pop();
    for (const std::size_t v : adj[u]) {
      if (seen[v]) continue;
      if (faults.cut(brokers[u]->node(), brokers[v]->node(), now)) continue;
      if (v == to) return true;
      seen[v] = true;
      q.push(v);
    }
  }
  return false;
}

}  // namespace

bool ScenarioDeployment::reachable(std::size_t tracker_index,
                                   std::size_t entity_index, TimePoint now) {
  tracing::TracedEntity& e = *entities_.at(entity_index);
  const transport::NodeId hosting = e.client().broker();
  const std::size_t host_index = broker_index_of(hosting);
  if (host_index == SIZE_MAX) return false;  // mid-failover, unhosted
  if (e.failing_over() || !e.tracing_active()) return false;
  const transport::FaultInjector& faults = backend_.faults();
  if (faults.cut(e.client().node(), hosting, now)) return false;
  tracing::Tracker& t = *trackers_.at(tracker_index);
  const std::size_t t_home = tracker_home_.at(tracker_index);
  if (faults.cut(t.client().node(), brokers_[t_home]->node(), now)) {
    return false;
  }
  return overlay_path(brokers_, topology_->edges(), faults, t_home,
                      host_index, now);
}

void ScenarioDeployment::sample_truth(AvailabilityOracle& oracle,
                                      TimePoint now) {
  for (std::size_t t = 0; t < trackers_.size(); ++t) {
    for (std::size_t e = 0; e < entities_.size(); ++e) {
      oracle.set_truth(trackers_[t]->tracker_id(),
                       entities_[e]->entity_id(), reachable(t, e, now), now);
    }
  }
  for (std::size_t e = 0; e < entities_.size(); ++e) {
    const std::uint64_t fo = entities_[e]->stats().failovers;
    if (fo > last_failovers_[e]) {
      oracle.note_failover(entities_[e]->entity_id(), fo, now);
      last_failovers_[e] = fo;
    }
  }
}

bool ScenarioDeployment::reachable_static(std::size_t tracker_index,
                                          std::size_t entity_index,
                                          TimePoint now) const {
  const std::size_t e_home = entity_home_.at(entity_index);
  const std::size_t t_home = tracker_home_.at(tracker_index);
  const transport::FaultInjector& faults = backend_.faults();
  // Home-broker table and client node ids are immutable after creation,
  // so this is safe while RealTimeNetwork actors run.
  if (faults.cut(entities_.at(entity_index)->client().node(),
                 brokers_[e_home]->node(), now)) {
    return false;
  }
  if (faults.cut(trackers_.at(tracker_index)->client().node(),
                 brokers_[t_home]->node(), now)) {
    return false;
  }
  return overlay_path(brokers_, topology_->edges(), faults, t_home, e_home,
                      now);
}

void ScenarioDeployment::sample_truth_static(AvailabilityOracle& oracle,
                                             TimePoint now) const {
  for (std::size_t t = 0; t < trackers_.size(); ++t) {
    for (std::size_t e = 0; e < entities_.size(); ++e) {
      oracle.set_truth(trackers_[t]->tracker_id(),
                       entities_[e]->entity_id(),
                       reachable_static(t, e, now), now);
    }
  }
}

std::vector<std::size_t> ScenarioDeployment::rack(std::size_t r) const {
  return racks_.at(r);
}

}  // namespace et::chaos
