// Availability oracle: ground truth vs tracker-observed state.
//
// A chaos scenario knows the truth — it injected the faults, so it can
// compute whether each (tracker, entity) pair is genuinely connected at
// any instant. The oracle records that truth timeline alongside every
// verified trace each tracker receives, then answers the paper's
// evaluation questions (§6): how long after a real failure does a tracker
// learn of it (detection latency), how often does it cry wolf (false
// suspicions), and how far off is its integrated availability estimate
// (observed-availability error)? It also checks two safety invariants the
// regression tests pin:
//
//   I1  no availability signal (ALLS_WELL / READY / JOIN / INITIALIZING)
//       may arrive while the pair's truth has been down for longer than
//       the detection bound plus a propagation grace;
//   I2  every RECOVERING trace must be backed by a real failover the
//       entity actually performed by that time.
//
// Thread-safety: all methods lock an internal mutex — tracker callbacks
// run in tracker-node contexts, which on RealTimeNetwork are real threads.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/tracing/trace_types.h"
#include "src/tracing/tracker.h"

namespace et::chaos {

/// True for trace types that assert the entity is alive and reachable.
[[nodiscard]] bool availability_signal(tracing::TraceType t);

/// Per-(tracker, entity) evaluation results. Latencies in microseconds.
struct PairReport {
  std::string tracker_id;
  std::string entity_id;
  std::size_t truth_down_edges = 0;     // real up->down transitions
  std::size_t detected_down_edges = 0;  // episodes surfaced to the tracker
                                        // (suspicion trace, or RECOVERING
                                        // when the hosting broker died)
  double mean_detection_latency_us = 0.0;  // over detected edges
  double max_detection_latency_us = 0.0;
  std::size_t false_suspicions = 0;   // suspicion signals while truth up
  std::size_t suspicion_signals = 0;  // all suspicion/failed/disconnect
  double truth_availability = 0.0;    // fraction of window truth was up
  double observed_availability = 0.0; // fraction observed up
  double availability_error = 0.0;    // |observed - truth|
};

struct OracleReport {
  std::vector<PairReport> pairs;
  std::vector<std::string> invariant_violations;  // empty = all hold

  [[nodiscard]] double max_detection_latency_us() const;
  [[nodiscard]] double mean_detection_latency_us() const;  // over all pairs
  [[nodiscard]] std::size_t false_suspicions() const;
  [[nodiscard]] double mean_availability_error() const;
};

class AvailabilityOracle {
 public:
  /// Wraps `inner` (may be null) into a TraceHandler that records every
  /// verified trace `tracker` receives about `entity` before forwarding.
  /// Pass the result to Tracker::track.
  [[nodiscard]] tracing::Tracker::TraceHandler tap(
      const std::string& tracker_id, const std::string& entity_id,
      transport::NetworkBackend& backend,
      tracing::Tracker::TraceHandler inner = nullptr);

  /// Records the ground-truth connectivity of (tracker, entity) at `at`.
  /// Repeated equal states collapse; the scenario calls this every sample
  /// slice after recomputing reachability from the fault plan.
  void set_truth(const std::string& tracker_id, const std::string& entity_id,
                 bool up, TimePoint at);

  /// Records that `entity` completed its n-th failover at (or before) `at`.
  /// Invariant I2 admits a RECOVERING trace only when a failover with an
  /// equal or earlier timestamp exists.
  void note_failover(const std::string& entity_id, std::uint64_t count,
                     TimePoint at);

  /// Deterministic rendering of every pair's merged truth + observation
  /// timeline, sorted by (tracker, entity, time, kind). Byte-identical
  /// across same-seed virtual-time runs.
  [[nodiscard]] std::vector<std::string> timeline() const;

  /// Computes per-pair metrics over [first truth sample, end]. A
  /// suspicion signal counts as *false* only when the pair's truth was up
  /// continuously over [t - grace, t] — grace absorbs the propagation
  /// window in which a suspicion about an already-healed outage is stale
  /// but honest.
  [[nodiscard]] OracleReport report(TimePoint end, Duration grace = 0) const;

  /// Availability scoring restricted to [begin, end], with truth and
  /// observed state carried in from before `begin` — the post-repair tail
  /// question ("did the overlay converge back?") needs the error over the
  /// settled window only, not diluted/inflated by the outage itself.
  /// Only the availability and suspicion fields of each PairReport are
  /// populated (detection latency is an episode property, not a window
  /// one); false suspicions use the same `grace` rule as report().
  [[nodiscard]] OracleReport report_window(TimePoint begin, TimePoint end,
                                           Duration grace = 0) const;

  /// Checks I1/I2 and returns violation descriptions (empty = pass).
  /// `detection_bound` is the configured worst-case detection time
  /// (roughly disconnect_misses * ping_interval); `grace` absorbs overlay
  /// propagation delay and truth-sampling quantization.
  [[nodiscard]] std::vector<std::string> check_invariants(
      Duration detection_bound, Duration grace) const;

  /// One recorded trace delivery: arrival instant, the emitter's
  /// issued_at stamp, and the trace type. The emitter stamp is what the
  /// ledger audit matches observations against (arrival time is a
  /// delivery property; issued_at names the ledgered publication).
  struct ObservedEvent {
    TimePoint at = 0;
    TimePoint issued_at = 0;
    tracing::TraceType type{};
  };

  /// Every observation recorded for (tracker, entity), in arrival order.
  [[nodiscard]] std::vector<ObservedEvent> observed_events(
      const std::string& tracker_id, const std::string& entity_id) const;

 private:
  struct TruthEdge {
    TimePoint at = 0;
    bool up = true;
  };
  struct Observation {
    TimePoint at = 0;
    tracing::TraceType type{};
    TimePoint issued_at = 0;
  };
  struct Pair {
    std::vector<TruthEdge> truth;
    std::vector<Observation> observed;
  };
  struct Failover {
    std::uint64_t count = 0;
    TimePoint at = 0;
  };

  using Key = std::pair<std::string, std::string>;  // tracker, entity

  mutable std::mutex mu_;
  std::map<Key, Pair> pairs_;
  std::map<std::string, std::vector<Failover>> failovers_;  // by entity
};

}  // namespace et::chaos
