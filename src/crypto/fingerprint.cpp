#include "src/crypto/fingerprint.h"

#include <algorithm>

#include "src/crypto/sha256.h"

namespace et::crypto {

std::string Fingerprint256::to_hex() const {
  return hex_encode(BytesView(bytes.data(), bytes.size()));
}

Fingerprint256 fingerprint(BytesView data) {
  const Bytes digest = Sha256::digest(data);
  Fingerprint256 fp;
  std::copy(digest.begin(), digest.end(), fp.bytes.begin());
  return fp;
}

}  // namespace et::crypto
