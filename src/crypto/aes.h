// AES block cipher (FIPS 197) with CBC mode and PKCS#7 padding.
//
// The paper secures trace payloads with "192-bit AES keys" (§6.1); this
// implementation supports 128/192/256-bit keys. CBC ciphertexts carry the
// random IV as their first block. Straightforward S-box implementation —
// not side-channel hardened (see the crypto disclaimer in DESIGN.md).
#pragma once

#include <array>
#include <cstdint>

#include "src/common/bytes.h"
#include "src/common/random.h"

namespace et::crypto {

/// Raw AES block cipher over 16-byte blocks.
class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Key must be 16, 24 or 32 bytes; throws std::invalid_argument otherwise.
  explicit Aes(BytesView key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(std::uint8_t block[16]) const;
  /// Decrypts one 16-byte block in place.
  void decrypt_block(std::uint8_t block[16]) const;

  [[nodiscard]] std::size_t key_bits() const { return key_bits_; }

 private:
  std::size_t rounds_;
  std::size_t key_bits_;
  // Maximum schedule: AES-256 has 15 round keys of 16 bytes.
  std::array<std::uint8_t, 240> round_keys_{};
};

/// CBC + PKCS#7 encryption. Output = IV || ciphertext. IV drawn from `rng`.
Bytes aes_cbc_encrypt(const Aes& cipher, BytesView plaintext, Rng& rng);

/// CBC + PKCS#7 decryption of a buffer produced by aes_cbc_encrypt.
/// Throws std::invalid_argument on bad length or padding (treat as tamper).
Bytes aes_cbc_decrypt(const Aes& cipher, BytesView ciphertext);

}  // namespace et::crypto
