#include "src/crypto/bigint.h"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>

namespace et::crypto {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt::BigInt(std::uint64_t v) {
  if (v) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

BigInt BigInt::from_bytes(BytesView b) {
  BigInt out;
  out.limbs_.assign((b.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < b.size(); ++i) {
    // b[0] is the most significant byte.
    const std::size_t bit_pos = (b.size() - 1 - i);
    out.limbs_[bit_pos / 4] |= static_cast<std::uint32_t>(b[i])
                               << (8 * (bit_pos % 4));
  }
  out.trim();
  return out;
}

Bytes BigInt::to_bytes(std::size_t min_len) const {
  const std::size_t bits = bit_length();
  const std::size_t len = std::max(min_len, (bits + 7) / 8);
  Bytes out(len, 0);
  for (std::size_t i = 0; i < len && i < limbs_.size() * 4; ++i) {
    const std::uint32_t limb = limbs_[i / 4];
    out[len - 1 - i] = static_cast<std::uint8_t>(limb >> (8 * (i % 4)));
  }
  return out;
}

BigInt BigInt::parse(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt::parse: empty");
  BigInt out;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    for (char c : text.substr(2)) {
      int nib;
      if (c >= '0' && c <= '9') nib = c - '0';
      else if (c >= 'a' && c <= 'f') nib = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') nib = c - 'A' + 10;
      else throw std::invalid_argument("BigInt::parse: bad hex digit");
      out = (out << 4) + BigInt(static_cast<std::uint64_t>(nib));
    }
  } else {
    const BigInt ten(10);
    for (char c : text) {
      if (c < '0' || c > '9') {
        throw std::invalid_argument("BigInt::parse: bad decimal digit");
      }
      out = out * ten + BigInt(static_cast<std::uint64_t>(c - '0'));
    }
  }
  return out;
}

BigInt BigInt::random_bits(Rng& rng, std::size_t bits) {
  BigInt out;
  const std::size_t limbs = (bits + 31) / 32;
  out.limbs_.resize(limbs);
  for (auto& l : out.limbs_) l = rng.next_u32();
  const std::size_t extra = limbs * 32 - bits;
  if (extra && limbs) {
    out.limbs_.back() &= (0xFFFFFFFFu >> extra);
  }
  out.trim();
  return out;
}

BigInt BigInt::random_below(Rng& rng, const BigInt& bound) {
  if (bound.is_zero()) {
    throw std::domain_error("random_below: zero bound");
  }
  const std::size_t bits = bound.bit_length();
  for (;;) {
    BigInt candidate = random_bits(rng, bits);
    if (candidate < bound) return candidate;
  }
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  const std::uint32_t top = limbs_.back();
  return (limbs_.size() - 1) * 32 +
         (32 - static_cast<std::size_t>(std::countl_zero(top)));
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

std::uint64_t BigInt::to_u64() const {
  if (limbs_.size() > 2) throw std::overflow_error("BigInt::to_u64: too large");
  std::uint64_t v = 0;
  if (limbs_.size() > 1) v = static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (!limbs_.empty()) v |= limbs_[0];
  return v;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() <=> b.limbs_.size();
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigInt BigInt::add_impl(const BigInt& a, const BigInt& b) {
  BigInt out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t s = carry;
    if (i < a.limbs_.size()) s += a.limbs_[i];
    if (i < b.limbs_.size()) s += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(s);
    carry = s >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.trim();
  return out;
}

BigInt BigInt::sub_impl(const BigInt& a, const BigInt& b) {
  if (a < b) throw std::underflow_error("BigInt subtraction underflow");
  BigInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t d = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) d -= b.limbs_[i];
    if (d < 0) {
      d += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(d);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator+(const BigInt& rhs) const { return add_impl(*this, rhs); }
BigInt BigInt::operator-(const BigInt& rhs) const { return sub_impl(*this, rhs); }

BigInt BigInt::operator*(const BigInt& rhs) const {
  if (is_zero() || rhs.is_zero()) return {};
  BigInt out;
  out.limbs_.assign(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = limbs_[i];
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out.limbs_[i + j]) + ai * rhs.limbs_[j] +
          carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + rhs.limbs_.size();
    while (carry) {
      const std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return {};
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

DivMod BigInt::divmod(const BigInt& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("BigInt division by zero");
  if (*this < divisor) return {BigInt{}, *this};

  // Single-limb fast path.
  if (divisor.limbs_.size() == 1) {
    const std::uint64_t d = divisor.limbs_[0];
    BigInt q;
    q.limbs_.assign(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {std::move(q), BigInt(rem)};
  }

  // Knuth TAOCP vol. 2, Algorithm D.
  const std::size_t shift =
      static_cast<std::size_t>(std::countl_zero(divisor.limbs_.back()));
  const BigInt u = *this << shift;
  const BigInt v = divisor << shift;
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<std::uint32_t> un(u.limbs_);
  un.push_back(0);  // u has m+n+1 digits after normalization
  const std::vector<std::uint32_t>& vn = v.limbs_;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate qhat from the top two digits of the current remainder.
    const std::uint64_t top =
        (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = top / vn[n - 1];
    std::uint64_t rhat = top % vn[n - 1];
    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }

    // Multiply-subtract qhat*v from u[j..j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      const std::int64_t t = static_cast<std::int64_t>(un[i + j]) -
                             static_cast<std::int64_t>(p & 0xFFFFFFFFu) -
                             borrow;
      un[i + j] = static_cast<std::uint32_t>(t);
      borrow = (t < 0) ? 1 : 0;
    }
    const std::int64_t t = static_cast<std::int64_t>(un[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    un[j + n] = static_cast<std::uint32_t>(t);

    if (t < 0) {
      // qhat was one too large: add v back.
      --qhat;
      std::uint64_t carry2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s =
            static_cast<std::uint64_t>(un[i + j]) + vn[i] + carry2;
        un[i + j] = static_cast<std::uint32_t>(s);
        carry2 = s >> 32;
      }
      un[j + n] = static_cast<std::uint32_t>(un[j + n] + carry2);
    }
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }
  q.trim();

  BigInt r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  return {std::move(q), r >> shift};
}

BigInt BigInt::operator/(const BigInt& rhs) const { return divmod(rhs).quotient; }
BigInt BigInt::operator%(const BigInt& rhs) const { return divmod(rhs).remainder; }

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  std::string out;
  BigInt v = *this;
  const BigInt billion(1000000000ULL);
  std::vector<std::uint32_t> chunks;
  while (!v.is_zero()) {
    auto [q, r] = v.divmod(billion);
    chunks.push_back(r.is_zero() ? 0u : r.limbs_[0]);
    v = std::move(q);
  }
  out = std::to_string(chunks.back());
  for (std::size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out += std::string(9 - part.size(), '0') + part;
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  const Bytes b = to_bytes();
  std::string hex = hex_encode(b);
  // Strip the possible leading zero nibble.
  if (hex.size() > 1 && hex[0] == '0') hex.erase(0, 1);
  return hex;
}

// ---------------------------------------------------------------------------
// Montgomery arithmetic
// ---------------------------------------------------------------------------

namespace {
// -n^{-1} mod 2^32 by Newton iteration (n odd).
std::uint32_t mont_n0inv(std::uint32_t n0) {
  std::uint32_t x = n0;  // 3-bit accurate seed for odd n0
  for (int i = 0; i < 5; ++i) x *= 2 - n0 * x;
  return ~x + 1;  // negate
}
}  // namespace

Montgomery::Montgomery(const BigInt& modulus) : n_(modulus) {
  if (!modulus.is_odd() || modulus.bit_length() < 2) {
    throw std::domain_error("Montgomery: modulus must be odd and > 1");
  }
  k_ = n_.limbs_.size();
  n0inv_ = mont_n0inv(n_.limbs_[0]);
  // R^2 mod n with R = 2^(32k).
  BigInt r2 = BigInt(1) << (64 * k_);
  r2_ = r2 % n_;
}

BigInt Montgomery::mul(const BigInt& a, const BigInt& b) const {
  // CIOS (coarsely integrated operand scanning) Montgomery multiplication.
  std::vector<std::uint32_t> t(k_ + 2, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    const std::uint64_t ai = (i < a.limbs_.size()) ? a.limbs_[i] : 0;
    // t += ai * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint64_t bj = (j < b.limbs_.size()) ? b.limbs_[j] : 0;
      const std::uint64_t cur = t[j] + ai * bj + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = t[k_] + carry;
    t[k_] = static_cast<std::uint32_t>(cur);
    t[k_ + 1] = static_cast<std::uint32_t>(cur >> 32);

    // m = t[0] * n0inv mod 2^32 ; t += m * n ; t >>= 32
    const std::uint32_t m = t[0] * n0inv_;
    carry = (static_cast<std::uint64_t>(t[0]) +
             static_cast<std::uint64_t>(m) * n_.limbs_[0]) >>
            32;
    for (std::size_t j = 1; j < k_; ++j) {
      const std::uint64_t cur2 =
          t[j] + static_cast<std::uint64_t>(m) * n_.limbs_[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(cur2);
      carry = cur2 >> 32;
    }
    cur = t[k_] + carry;
    t[k_ - 1] = static_cast<std::uint32_t>(cur);
    cur = t[k_ + 1] + (cur >> 32);
    t[k_] = static_cast<std::uint32_t>(cur);
    t[k_ + 1] = 0;
  }

  BigInt out;
  out.limbs_.assign(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k_ + 1));
  out.trim();
  if (out >= n_) out = out - n_;
  return out;
}

BigInt Montgomery::to_mont(const BigInt& x) const { return mul(x, r2_); }

BigInt Montgomery::from_mont(const BigInt& x) const { return mul(x, BigInt(1)); }

BigInt Montgomery::pow(const BigInt& base, const BigInt& exponent) const {
  const BigInt b = base % n_;
  if (exponent.is_zero()) return BigInt(1) % n_;

  // Precompute b^0..b^15 in Montgomery form (4-bit fixed window).
  std::array<BigInt, 16> table;
  table[0] = to_mont(BigInt(1));
  table[1] = to_mont(b);
  for (std::size_t i = 2; i < 16; ++i) table[i] = mul(table[i - 1], table[1]);

  const std::size_t bits = exponent.bit_length();
  const std::size_t windows = (bits + 3) / 4;
  BigInt acc = table[0];
  for (std::size_t w = windows; w-- > 0;) {
    for (int s = 0; s < 4; ++s) acc = mul(acc, acc);
    std::size_t idx = 0;
    for (int s = 3; s >= 0; --s) {
      idx = (idx << 1) | (exponent.bit(w * 4 + static_cast<std::size_t>(s)) ? 1u : 0u);
    }
    if (idx) acc = mul(acc, table[idx]);
  }
  return from_mont(acc);
}

BigInt BigInt::mod_exp(const BigInt& exponent, const BigInt& modulus) const {
  if (modulus.bit_length() < 2) {
    if (modulus.is_zero()) throw std::domain_error("mod_exp: zero modulus");
    return {};  // mod 1
  }
  if (modulus.is_odd()) {
    return Montgomery(modulus).pow(*this, exponent);
  }
  // Classical square-and-multiply with divmod reduction (rare path; only
  // used for non-RSA moduli in tests).
  BigInt base = *this % modulus;
  BigInt acc(1);
  for (std::size_t i = exponent.bit_length(); i-- > 0;) {
    acc = (acc * acc) % modulus;
    if (exponent.bit(i)) acc = (acc * base) % modulus;
  }
  return acc;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::mod_inverse(const BigInt& modulus) const {
  // Extended Euclid tracking only the coefficient of *this, with signs
  // handled via a parity flag (all values stay non-negative).
  if (modulus.bit_length() < 2) {
    throw std::domain_error("mod_inverse: modulus must be > 1");
  }
  BigInt r0 = modulus;
  BigInt r1 = *this % modulus;
  BigInt t0;          // coefficient magnitudes
  BigInt t1(1);
  bool neg0 = false;  // sign of t0 / t1
  bool neg1 = false;

  while (!r1.is_zero()) {
    auto [q, r2] = r0.divmod(r1);
    // t2 = t0 - q*t1  (signed)
    const BigInt qt = q * t1;
    BigInt t2;
    bool neg2;
    if (neg0 == neg1) {
      if (t0 >= qt) {
        t2 = t0 - qt;
        neg2 = neg0;
      } else {
        t2 = qt - t0;
        neg2 = !neg0;
      }
    } else {
      t2 = t0 + qt;
      neg2 = neg0;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    neg0 = neg1;
    t1 = std::move(t2);
    neg1 = neg2;
  }
  if (!(r0 == BigInt(1))) {
    throw std::domain_error("mod_inverse: values are not coprime");
  }
  if (neg0 && !t0.is_zero()) return modulus - (t0 % modulus);
  return t0 % modulus;
}

bool BigInt::is_probable_prime(Rng& rng, int rounds) const {
  if (bit_length() < 2) return false;       // 0, 1
  if (*this == BigInt(2) || *this == BigInt(3)) return true;
  if (!is_odd()) return false;

  // Trial division by small primes.
  static constexpr std::uint32_t kSmallPrimes[] = {
      3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37,  41,  43,  47,  53,  59,
      61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131};
  for (std::uint32_t p : kSmallPrimes) {
    const BigInt bp(p);
    if (*this == bp) return true;
    if ((*this % bp).is_zero()) return false;
  }

  // n-1 = d * 2^s
  const BigInt n_minus_1 = *this - BigInt(1);
  BigInt d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }

  const Montgomery mont(*this);
  const BigInt two(2);
  for (int round = 0; round < rounds; ++round) {
    // a in [2, n-2]
    const BigInt a = two + BigInt::random_below(rng, n_minus_1 - two);
    BigInt x = mont.pow(a, d);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = (x * x) % *this;
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt BigInt::generate_prime(Rng& rng, std::size_t bits, int mr_rounds) {
  if (bits < 8) throw std::invalid_argument("generate_prime: bits too small");
  for (;;) {
    BigInt candidate = random_bits(rng, bits);
    // Force exact bit length (top two bits set) and oddness.
    candidate.limbs_.resize((bits + 31) / 32, 0);
    const std::size_t top_bit = (bits - 1) % 32;
    candidate.limbs_.back() |= 1u << top_bit;
    if (bits >= 2) {
      const std::size_t second = (bits - 2) % 32;
      candidate.limbs_[(bits - 2) / 32] |= 1u << second;
    }
    candidate.limbs_[0] |= 1u;
    candidate.trim();
    if (candidate.is_probable_prime(rng, mr_rounds)) return candidate;
  }
}

}  // namespace et::crypto
