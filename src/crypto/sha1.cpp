#include "src/crypto/sha1.h"

#include <bit>
#include <cstring>

namespace et::crypto {

Sha1::Sha1() { reset(); }

void Sha1::reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha1::update(BytesView data) {
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take =
        std::min(kBlockSize - buffer_len_, data.size());
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == kBlockSize) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    process_block(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Bytes Sha1::finalize() {
  const std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80 then zeros to 56 mod 64, then 64-bit big-endian length.
  Bytes pad;
  pad.push_back(0x80);
  while ((total_len_ + pad.size()) % kBlockSize != 56) pad.push_back(0x00);
  for (int shift = 56; shift >= 0; shift -= 8) {
    pad.push_back(static_cast<std::uint8_t>(bit_len >> shift));
  }
  update(pad);

  Bytes out(kDigestSize);
  for (std::size_t i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

Bytes Sha1::digest(BytesView data) {
  Sha1 h;
  h.update(data);
  return h.finalize();
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[t * 4]) << 24) |
           (static_cast<std::uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = std::rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = std::rotl(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = std::rotl(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

}  // namespace et::crypto
