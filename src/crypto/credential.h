// Credentials and the certificate authority.
//
// The paper authenticates entities with X.509 certificates (it cites both
// X.501 and X.509; we follow the X.509 usage in §3.1). A `Credential` is a
// minimal certificate: subject identifier, RSA public key, validity window
// and the issuing CA's signature over those fields. One CA level is enough
// for the scheme — the TDN and brokers only need to check that a credential
// chains to a trusted CA and that the presenter holds the private key.
#pragma once

#include <string>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/crypto/rsa.h"

namespace et::crypto {

/// A signed binding of subject-id to public key.
class Credential {
 public:
  Credential() = default;
  Credential(std::string subject, RsaPublicKey key, std::string issuer,
             TimePoint not_before, TimePoint not_after, Bytes signature);

  [[nodiscard]] const std::string& subject() const { return subject_; }
  [[nodiscard]] const RsaPublicKey& public_key() const { return key_; }
  [[nodiscard]] const std::string& issuer() const { return issuer_; }
  [[nodiscard]] TimePoint not_before() const { return not_before_; }
  [[nodiscard]] TimePoint not_after() const { return not_after_; }
  [[nodiscard]] const Bytes& signature() const { return signature_; }
  [[nodiscard]] bool empty() const { return key_.empty(); }

  /// The to-be-signed encoding (everything except the signature).
  [[nodiscard]] Bytes tbs() const;

  /// Full wire encoding.
  [[nodiscard]] Bytes serialize() const;
  static Credential deserialize(BytesView b);

  /// Checks the CA signature and the validity window at time `now`.
  [[nodiscard]] Status verify(const RsaPublicKey& ca_key, TimePoint now) const;

 private:
  std::string subject_;
  RsaPublicKey key_;
  std::string issuer_;
  TimePoint not_before_ = 0;
  TimePoint not_after_ = 0;
  Bytes signature_;
};

/// Issues credentials. Every deployment in this repository uses a single
/// shared CA whose public key all brokers/TDNs trust.
class CertificateAuthority {
 public:
  CertificateAuthority(std::string name, Rng& rng,
                       std::size_t key_bits = 1024);

  /// Signs a credential binding `subject` to `key`, valid
  /// [now, now + lifetime).
  [[nodiscard]] Credential issue(const std::string& subject,
                                 const RsaPublicKey& key, TimePoint now,
                                 Duration lifetime) const;

  [[nodiscard]] const RsaPublicKey& public_key() const {
    return keys_.public_key;
  }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  RsaKeyPair keys_;
};

/// An entity's complete identity: its id, key pair and CA-issued credential.
struct Identity {
  std::string id;
  RsaKeyPair keys;
  Credential credential;

  /// Convenience: generate keys and obtain a credential in one call.
  static Identity create(const std::string& id, const CertificateAuthority& ca,
                         Rng& rng, TimePoint now,
                         Duration lifetime = 3600 * kSecond,
                         std::size_t key_bits = 1024);
};

}  // namespace et::crypto
