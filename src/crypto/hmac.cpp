#include "src/crypto/hmac.h"

#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"

namespace et::crypto {

namespace {

template <typename Hash>
Bytes hmac_impl(BytesView key, BytesView message) {
  constexpr std::size_t kBlock = Hash::kBlockSize;

  Bytes k(key.begin(), key.end());
  if (k.size() > kBlock) k = Hash::digest(k);
  k.resize(kBlock, 0x00);

  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Hash inner;
  inner.update(ipad);
  inner.update(message);
  const Bytes inner_digest = inner.finalize();

  Hash outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

}  // namespace

Bytes hmac_sha1(BytesView key, BytesView message) {
  return hmac_impl<Sha1>(key, message);
}

Bytes hmac_sha256(BytesView key, BytesView message) {
  return hmac_impl<Sha256>(key, message);
}

bool hmac_sha1_verify(BytesView key, BytesView message, BytesView tag) {
  return constant_time_equal(hmac_sha1(key, message), tag);
}

bool hmac_sha256_verify(BytesView key, BytesView message, BytesView tag) {
  return constant_time_equal(hmac_sha256(key, message), tag);
}

}  // namespace et::crypto
