#include "src/crypto/rsa.h"

#include <stdexcept>

#include "src/common/serialize.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"

namespace et::crypto {

namespace {

// DER-encoded DigestInfo prefixes from RFC 8017 §9.2.
constexpr std::uint8_t kSha1Prefix[] = {0x30, 0x21, 0x30, 0x09, 0x06,
                                        0x05, 0x2b, 0x0e, 0x03, 0x02,
                                        0x1a, 0x05, 0x00, 0x04, 0x14};
constexpr std::uint8_t kSha256Prefix[] = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

Bytes digest_info(BytesView message, HashAlg alg) {
  Bytes out;
  if (alg == HashAlg::kSha1) {
    out.assign(std::begin(kSha1Prefix), std::end(kSha1Prefix));
    append(out, Sha1::digest(message));
  } else {
    out.assign(std::begin(kSha256Prefix), std::end(kSha256Prefix));
    append(out, Sha256::digest(message));
  }
  return out;
}

// EMSA-PKCS1-v1_5: 0x00 0x01 FF..FF 0x00 DigestInfo
Bytes emsa_encode(BytesView message, HashAlg alg, std::size_t em_len) {
  const Bytes t = digest_info(message, alg);
  if (em_len < t.size() + 11) {
    throw std::invalid_argument("RSA modulus too small for digest");
  }
  Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), em_len - t.size() - 3, 0xFF);
  em.push_back(0x00);
  append(em, t);
  return em;
}

}  // namespace

std::string hash_alg_name(HashAlg alg) {
  return alg == HashAlg::kSha1 ? "SHA-1" : "SHA-256";
}

RsaPublicKey::RsaPublicKey(BigInt n, BigInt e)
    : n_(std::move(n)), e_(std::move(e)) {}

std::size_t RsaPublicKey::modulus_len() const {
  return (n_.bit_length() + 7) / 8;
}

bool RsaPublicKey::verify(BytesView message, BytesView signature,
                          HashAlg alg) const {
  if (empty()) return false;
  const std::size_t k = modulus_len();
  if (signature.size() != k) return false;
  const BigInt s = BigInt::from_bytes(signature);
  if (s >= n_) return false;
  const BigInt m = s.mod_exp(e_, n_);
  const Bytes em = m.to_bytes(k);
  Bytes expected;
  try {
    expected = emsa_encode(message, alg, k);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return constant_time_equal(em, expected);
}

Bytes RsaPublicKey::encrypt(BytesView plaintext, Rng& rng) const {
  const std::size_t k = modulus_len();
  if (plaintext.size() + 11 > k) {
    throw std::invalid_argument("RSAES-PKCS1: message too long");
  }
  // EME-PKCS1-v1_5: 0x00 0x02 PS(nonzero random) 0x00 M
  Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.push_back(0x02);
  const std::size_t ps_len = k - plaintext.size() - 3;
  for (std::size_t i = 0; i < ps_len; ++i) {
    std::uint8_t b;
    do {
      b = static_cast<std::uint8_t>(rng.next_u64());
    } while (b == 0);
    em.push_back(b);
  }
  em.push_back(0x00);
  append(em, plaintext);

  const BigInt m = BigInt::from_bytes(em);
  return m.mod_exp(e_, n_).to_bytes(k);
}

Bytes RsaPublicKey::serialize() const {
  Writer w;
  w.bytes(n_.to_bytes());
  w.bytes(e_.to_bytes());
  return std::move(w).take();
}

RsaPublicKey RsaPublicKey::deserialize(BytesView b) {
  Reader r(b);
  BigInt n = BigInt::from_bytes(r.bytes());
  BigInt e = BigInt::from_bytes(r.bytes());
  r.expect_done();
  return {std::move(n), std::move(e)};
}

Bytes RsaPublicKey::fingerprint() const { return Sha1::digest(serialize()); }

RsaVerifyContext::RsaVerifyContext(const RsaPublicKey& key) : key_(key) {
  if (key_.empty()) return;
  modulus_len_ = key_.modulus_len();
  if (key_.n().is_odd()) mont_ = std::make_unique<Montgomery>(key_.n());
}

bool RsaVerifyContext::verify(BytesView message, BytesView signature,
                              HashAlg alg) const {
  if (key_.empty()) return false;
  if (signature.size() != modulus_len_) return false;
  const BigInt s = BigInt::from_bytes(signature);
  if (s >= key_.n()) return false;

  BigInt m;
  if (mont_) {
    // Public exponents are sparse (65537, 17, 3): a left-to-right
    // square-and-multiply costs bit_length-1 squarings plus one multiply
    // per set bit, beating the window ladder's table build by ~2x.
    const BigInt& e = key_.e();
    const std::size_t bits = e.bit_length();
    if (bits == 0) return false;  // e = 0 is not a valid public exponent
    const BigInt base = mont_->to_mont(s);
    BigInt acc = base;
    for (std::size_t i = bits - 1; i-- > 0;) {
      acc = mont_->mul(acc, acc);
      if (e.bit(i)) acc = mont_->mul(acc, base);
    }
    m = mont_->from_mont(acc);
  } else {
    m = s.mod_exp(key_.e(), key_.n());
  }

  const Bytes em = m.to_bytes(modulus_len_);
  Bytes expected;
  try {
    expected = emsa_encode(message, alg, modulus_len_);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return constant_time_equal(em, expected);
}

BigInt RsaPrivateKey::private_op(const BigInt& c) const {
  // CRT: m1 = c^dp mod p, m2 = c^dq mod q, h = qinv*(m1-m2) mod p,
  // m = m2 + h*q.
  const BigInt m1 = c.mod_exp(dp_, p_);
  const BigInt m2 = c.mod_exp(dq_, q_);
  BigInt diff;
  if (m1 >= m2 % p_) {
    diff = m1 - (m2 % p_);
  } else {
    diff = (m1 + p_) - (m2 % p_);
  }
  const BigInt h = (qinv_ * diff) % p_;
  return m2 + h * q_;
}

Bytes RsaPrivateKey::sign(BytesView message, HashAlg alg) const {
  if (empty()) throw std::logic_error("RsaPrivateKey::sign: empty key");
  const std::size_t k = pub_.modulus_len();
  const Bytes em = emsa_encode(message, alg, k);
  const BigInt m = BigInt::from_bytes(em);
  return private_op(m).to_bytes(k);
}

Bytes RsaPrivateKey::decrypt(BytesView ciphertext) const {
  if (empty()) throw std::logic_error("RsaPrivateKey::decrypt: empty key");
  const std::size_t k = pub_.modulus_len();
  if (ciphertext.size() != k) {
    throw std::invalid_argument("RSAES-PKCS1: bad ciphertext length");
  }
  const BigInt c = BigInt::from_bytes(ciphertext);
  if (c >= pub_.n()) {
    throw std::invalid_argument("RSAES-PKCS1: ciphertext out of range");
  }
  const Bytes em = private_op(c).to_bytes(k);
  // Parse 0x00 0x02 PS 0x00 M.
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02) {
    throw std::invalid_argument("RSAES-PKCS1: bad padding");
  }
  std::size_t sep = 2;
  while (sep < em.size() && em[sep] != 0x00) ++sep;
  if (sep == em.size() || sep < 10) {
    throw std::invalid_argument("RSAES-PKCS1: bad padding");
  }
  return Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep + 1), em.end());
}

Bytes RsaPrivateKey::serialize() const {
  Writer w;
  w.bytes(pub_.serialize());
  w.bytes(d_.to_bytes());
  w.bytes(p_.to_bytes());
  w.bytes(q_.to_bytes());
  w.bytes(dp_.to_bytes());
  w.bytes(dq_.to_bytes());
  w.bytes(qinv_.to_bytes());
  return std::move(w).take();
}

RsaPrivateKey RsaPrivateKey::deserialize(BytesView b) {
  Reader r(b);
  RsaPrivateKey key;
  key.pub_ = RsaPublicKey::deserialize(r.bytes());
  key.d_ = BigInt::from_bytes(r.bytes());
  key.p_ = BigInt::from_bytes(r.bytes());
  key.q_ = BigInt::from_bytes(r.bytes());
  key.dp_ = BigInt::from_bytes(r.bytes());
  key.dq_ = BigInt::from_bytes(r.bytes());
  key.qinv_ = BigInt::from_bytes(r.bytes());
  r.expect_done();
  return key;
}

struct RsaKeyPairFactory {
  static RsaKeyPair make(Rng& rng, std::size_t bits) {
    if (bits < 128 || bits % 2 != 0) {
      throw std::invalid_argument("rsa_generate: bits must be even and >=128");
    }
    const BigInt e(65537);
    for (;;) {
      const BigInt p = BigInt::generate_prime(rng, bits / 2);
      BigInt q = BigInt::generate_prime(rng, bits / 2);
      if (p == q) continue;
      const BigInt n = p * q;
      if (n.bit_length() != bits) continue;  // want an exact-length modulus
      const BigInt p1 = p - BigInt(1);
      const BigInt q1 = q - BigInt(1);
      const BigInt phi = p1 * q1;
      if (!(BigInt::gcd(e, phi) == BigInt(1))) continue;
      const BigInt d = e.mod_inverse(phi);

      RsaPrivateKey priv;
      priv.pub_ = RsaPublicKey(n, e);
      priv.d_ = d;
      // Keep p > q so CRT recombination stays in range.
      if (p >= q) {
        priv.p_ = p;
        priv.q_ = q;
      } else {
        priv.p_ = q;
        priv.q_ = p;
      }
      priv.dp_ = d % (priv.p_ - BigInt(1));
      priv.dq_ = d % (priv.q_ - BigInt(1));
      priv.qinv_ = priv.q_.mod_inverse(priv.p_);

      RsaKeyPair pair;
      pair.public_key = priv.pub_;
      pair.private_key = std::move(priv);
      return pair;
    }
  }
};

RsaKeyPair rsa_generate(Rng& rng, std::size_t bits) {
  return RsaKeyPairFactory::make(rng, bits);
}

}  // namespace et::crypto
