// SHA-256 message digest (FIPS 180-4).
//
// Offered alongside SHA-1 so callers can choose a modern digest for
// signatures and HMAC; the paper-faithful benchmark configuration uses
// SHA-1, the extension benches compare both.
#pragma once

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace et::crypto {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  void update(BytesView data);
  [[nodiscard]] Bytes finalize();
  void reset();

  /// One-shot convenience.
  static Bytes digest(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace et::crypto
