#include "src/crypto/credential.h"

#include "src/common/serialize.h"

namespace et::crypto {

Credential::Credential(std::string subject, RsaPublicKey key,
                       std::string issuer, TimePoint not_before,
                       TimePoint not_after, Bytes signature)
    : subject_(std::move(subject)),
      key_(std::move(key)),
      issuer_(std::move(issuer)),
      not_before_(not_before),
      not_after_(not_after),
      signature_(std::move(signature)) {}

Bytes Credential::tbs() const {
  Writer w;
  w.str(subject_);
  w.bytes(key_.serialize());
  w.str(issuer_);
  w.i64(not_before_);
  w.i64(not_after_);
  return std::move(w).take();
}

Bytes Credential::serialize() const {
  Writer w;
  w.bytes(tbs());
  w.bytes(signature_);
  return std::move(w).take();
}

Credential Credential::deserialize(BytesView b) {
  Reader outer(b);
  const Bytes tbs_bytes = outer.bytes();
  Bytes sig = outer.bytes();
  outer.expect_done();

  Reader r(tbs_bytes);
  Credential c;
  c.subject_ = r.str();
  c.key_ = RsaPublicKey::deserialize(r.bytes());
  c.issuer_ = r.str();
  c.not_before_ = r.i64();
  c.not_after_ = r.i64();
  r.expect_done();
  c.signature_ = std::move(sig);
  return c;
}

Status Credential::verify(const RsaPublicKey& ca_key, TimePoint now) const {
  if (empty()) return unauthenticated("credential: empty");
  if (!ca_key.verify(tbs(), signature_)) {
    return unauthenticated("credential: bad CA signature for subject '" +
                           subject_ + "'");
  }
  if (now < not_before_) {
    return expired("credential: not yet valid for subject '" + subject_ + "'");
  }
  if (now >= not_after_) {
    return expired("credential: expired for subject '" + subject_ + "'");
  }
  return Status::ok();
}

CertificateAuthority::CertificateAuthority(std::string name, Rng& rng,
                                           std::size_t key_bits)
    : name_(std::move(name)), keys_(rsa_generate(rng, key_bits)) {}

Credential CertificateAuthority::issue(const std::string& subject,
                                       const RsaPublicKey& key, TimePoint now,
                                       Duration lifetime) const {
  Credential unsigned_cred(subject, key, name_, now, now + lifetime, {});
  Bytes sig = keys_.private_key.sign(unsigned_cred.tbs());
  return Credential(subject, key, name_, now, now + lifetime, std::move(sig));
}

Identity Identity::create(const std::string& id,
                          const CertificateAuthority& ca, Rng& rng,
                          TimePoint now, Duration lifetime,
                          std::size_t key_bits) {
  Identity ident;
  ident.id = id;
  ident.keys = rsa_generate(rng, key_bits);
  ident.credential = ca.issue(id, ident.keys.public_key, now, lifetime);
  return ident;
}

}  // namespace et::crypto
