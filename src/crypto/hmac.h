// HMAC (RFC 2104) over SHA-1 or SHA-256.
//
// Used by the signing-cost optimization (§6.3): once the traced entity and
// its hosting broker share a symmetric secret, entity→broker messages carry
// an HMAC tag (or are AES-encrypted) instead of an RSA signature.
#pragma once

#include "src/common/bytes.h"

namespace et::crypto {

/// HMAC-SHA1 tag (20 bytes).
Bytes hmac_sha1(BytesView key, BytesView message);

/// HMAC-SHA256 tag (32 bytes).
Bytes hmac_sha256(BytesView key, BytesView message);

/// Constant-time verification of an HMAC-SHA1 tag.
bool hmac_sha1_verify(BytesView key, BytesView message, BytesView tag);

/// Constant-time verification of an HMAC-SHA256 tag.
bool hmac_sha256_verify(BytesView key, BytesView message, BytesView tag);

}  // namespace et::crypto
