// Content fingerprints: fixed-size SHA-256 digests usable as map keys.
//
// The tracing layer keys its per-hop token-verification cache by the
// fingerprint of the raw serialized token, so byte-identical tokens —
// the common case for every trace a hosting broker emits during one
// validity window — collapse onto a single cache entry. A fingerprint
// commits to the exact bytes: two tokens differing in any bit (including
// a tampered signature) get different fingerprints, so a forged variant
// can never alias a genuine token's cached verdict.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "src/common/bytes.h"

namespace et::crypto {

/// 256-bit content fingerprint (a SHA-256 digest) with value semantics.
struct Fingerprint256 {
  std::array<std::uint8_t, 32> bytes{};

  friend bool operator==(const Fingerprint256&,
                         const Fingerprint256&) = default;

  /// Lower-case hex rendering (for logs and stats dumps).
  [[nodiscard]] std::string to_hex() const;
};

/// Fingerprints `data` with SHA-256.
[[nodiscard]] Fingerprint256 fingerprint(BytesView data);

/// Hasher for unordered containers. The digest is already uniformly
/// distributed, so the first eight bytes serve directly as the hash.
struct Fingerprint256Hash {
  std::size_t operator()(const Fingerprint256& f) const noexcept {
    std::uint64_t h;
    std::memcpy(&h, f.bytes.data(), sizeof(h));
    return static_cast<std::size_t>(h);
  }
};

}  // namespace et::crypto
