// Arbitrary-precision unsigned integers for the RSA implementation.
//
// Little-endian vector of 32-bit limbs. Supports the operations RSA needs:
// comparison, add/sub/mul, Knuth Algorithm-D division, shifts, modular
// exponentiation (Montgomery CIOS for odd moduli), extended-Euclid modular
// inverse, and Miller-Rabin primality testing.
//
// NOT constant-time. This is a reproduction-quality implementation whose
// purpose is to recreate the *cost structure* of the paper's BouncyCastle
// stack (sign >> verify >> symmetric ops), not to protect real keys.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/random.h"

namespace et::crypto {

struct DivMod;

/// Unsigned big integer.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From a machine word.
  explicit BigInt(std::uint64_t v);

  /// Big-endian octets → integer (leading zeros allowed).
  static BigInt from_bytes(BytesView b);

  /// Parses decimal, or hex when prefixed with "0x".
  static BigInt parse(std::string_view text);

  /// Uniform value in [0, 2^bits) from `rng`.
  static BigInt random_bits(Rng& rng, std::size_t bits);

  /// Uniform value in [0, bound) from `rng` (bound > 0).
  static BigInt random_below(Rng& rng, const BigInt& bound);

  /// Big-endian octets, minimal length (empty for zero) unless `min_len`
  /// asks for left-padding with zeros.
  [[nodiscard]] Bytes to_bytes(std::size_t min_len = 0) const;

  /// Decimal representation.
  [[nodiscard]] std::string to_string() const;
  /// Lower-case hex, no prefix, "0" for zero.
  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const {
    return !limbs_.empty() && (limbs_[0] & 1u);
  }
  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;
  /// Value of bit `i` (0 = LSB).
  [[nodiscard]] bool bit(std::size_t i) const;

  [[nodiscard]] std::uint64_t to_u64() const;  // throws if it doesn't fit

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.limbs_ == b.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  BigInt operator+(const BigInt& rhs) const;
  /// Requires *this >= rhs (unsigned); throws std::underflow_error otherwise.
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  /// Quotient; throws std::domain_error on division by zero.
  BigInt operator/(const BigInt& rhs) const;
  /// Remainder; throws std::domain_error on division by zero.
  BigInt operator%(const BigInt& rhs) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  /// Quotient and remainder in one pass (Knuth Algorithm D).
  [[nodiscard]] DivMod divmod(const BigInt& divisor) const;

  /// (this ^ exponent) mod modulus. Uses Montgomery multiplication when the
  /// modulus is odd, classical reduction otherwise. modulus > 1 required.
  [[nodiscard]] BigInt mod_exp(const BigInt& exponent,
                               const BigInt& modulus) const;

  /// Greatest common divisor.
  static BigInt gcd(BigInt a, BigInt b);

  /// Multiplicative inverse of *this mod `modulus`; throws
  /// std::domain_error when gcd(this, modulus) != 1.
  [[nodiscard]] BigInt mod_inverse(const BigInt& modulus) const;

  /// Miller-Rabin probabilistic primality test with `rounds` random bases.
  [[nodiscard]] bool is_probable_prime(Rng& rng, int rounds = 32) const;

  /// Generates a random prime with exactly `bits` bits (top two bits set so
  /// products have full length, as RSA key generation requires).
  static BigInt generate_prime(Rng& rng, std::size_t bits, int mr_rounds = 32);

 private:
  void trim();
  static BigInt add_impl(const BigInt& a, const BigInt& b);
  static BigInt sub_impl(const BigInt& a, const BigInt& b);

  friend class Montgomery;
  std::vector<std::uint32_t> limbs_;  // little-endian, no trailing zeros
};

/// Result of BigInt::divmod.
struct DivMod {
  BigInt quotient;
  BigInt remainder;
};

/// Montgomery multiplication context for a fixed odd modulus. Exposed so
/// RSA private-key operations can reuse one context across CRT halves.
class Montgomery {
 public:
  /// modulus must be odd and > 1.
  explicit Montgomery(const BigInt& modulus);

  /// (a * b * R^-1) mod n, inputs in Montgomery form.
  [[nodiscard]] BigInt mul(const BigInt& a, const BigInt& b) const;

  /// x -> x*R mod n.
  [[nodiscard]] BigInt to_mont(const BigInt& x) const;
  /// x*R mod n -> x.
  [[nodiscard]] BigInt from_mont(const BigInt& x) const;

  /// (base ^ exponent) mod n using 4-bit fixed windows.
  [[nodiscard]] BigInt pow(const BigInt& base, const BigInt& exponent) const;

 private:
  BigInt n_;
  BigInt r2_;             // R^2 mod n
  std::uint32_t n0inv_;   // -n^{-1} mod 2^32
  std::size_t k_;         // limb count of n
};

}  // namespace et::crypto
