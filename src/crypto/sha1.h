// SHA-1 message digest (FIPS 180-4).
//
// The paper's benchmarks use "1024-bit RSA with 160-bit SHA-1 and
// PKCS#1Padding" (§6.1); SHA-1 is therefore the default signature digest
// throughout this reproduction. SHA-1 is cryptographically broken for
// collision resistance — acceptable here because we reproduce the 2007
// system's cost profile, not its security margin.
#pragma once

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace et::crypto {

/// Incremental SHA-1 hasher.
class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;

  Sha1();

  /// Absorbs more input.
  void update(BytesView data);

  /// Finalizes and returns the 20-byte digest. The hasher must not be
  /// reused afterwards without reset().
  [[nodiscard]] Bytes finalize();

  /// Returns to the initial state.
  void reset();

  /// One-shot convenience.
  static Bytes digest(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace et::crypto
