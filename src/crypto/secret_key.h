// Symmetric secret keys with attached algorithm metadata.
//
// §5.1: "the entity is first responsible for the generation of a secret
// symmetric key ... the entity then securely routes this secret key, along
// with information about the encryption algorithm and padding scheme, to
// the broker". `SecretKey` bundles exactly those three things and provides
// the encrypt/decrypt operations traces use.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/bytes.h"
#include "src/common/random.h"

namespace et::crypto {

/// Symmetric cipher selection (all AES/CBC; key size varies).
enum class SymmetricAlg : std::uint8_t {
  kAes128Cbc = 1,
  kAes192Cbc = 2,  // paper default (192-bit AES, §6.1)
  kAes256Cbc = 3,
};

/// Padding scheme carried alongside the key (§5.1). Only PKCS#7 is
/// implemented; the field exists so the key-distribution payload matches
/// the paper's contents.
enum class PaddingScheme : std::uint8_t { kPkcs7 = 1 };

std::string symmetric_alg_name(SymmetricAlg alg);
std::size_t symmetric_key_len(SymmetricAlg alg);

/// Key material + algorithm + padding, serializable for key distribution.
class SecretKey {
 public:
  SecretKey() = default;

  /// Fresh random key for `alg`.
  static SecretKey generate(Rng& rng, SymmetricAlg alg = SymmetricAlg::kAes192Cbc);

  /// From existing material; length must match the algorithm.
  static SecretKey from_material(Bytes material, SymmetricAlg alg,
                                 PaddingScheme padding = PaddingScheme::kPkcs7);

  /// AES-CBC encrypt (IV prepended).
  [[nodiscard]] Bytes encrypt(BytesView plaintext, Rng& rng) const;
  /// AES-CBC decrypt; throws std::invalid_argument on bad padding/length.
  [[nodiscard]] Bytes decrypt(BytesView ciphertext) const;

  [[nodiscard]] SymmetricAlg algorithm() const { return alg_; }
  [[nodiscard]] PaddingScheme padding() const { return padding_; }
  [[nodiscard]] const Bytes& material() const { return material_; }
  [[nodiscard]] bool empty() const { return material_.empty(); }

  [[nodiscard]] Bytes serialize() const;
  static SecretKey deserialize(BytesView b);

  friend bool operator==(const SecretKey&, const SecretKey&) = default;

 private:
  Bytes material_;
  SymmetricAlg alg_ = SymmetricAlg::kAes192Cbc;
  PaddingScheme padding_ = PaddingScheme::kPkcs7;
};

}  // namespace et::crypto
