#include "src/crypto/secret_key.h"

#include <stdexcept>

#include "src/common/serialize.h"
#include "src/crypto/aes.h"

namespace et::crypto {

std::string symmetric_alg_name(SymmetricAlg alg) {
  switch (alg) {
    case SymmetricAlg::kAes128Cbc: return "AES-128/CBC";
    case SymmetricAlg::kAes192Cbc: return "AES-192/CBC";
    case SymmetricAlg::kAes256Cbc: return "AES-256/CBC";
  }
  return "unknown";
}

std::size_t symmetric_key_len(SymmetricAlg alg) {
  switch (alg) {
    case SymmetricAlg::kAes128Cbc: return 16;
    case SymmetricAlg::kAes192Cbc: return 24;
    case SymmetricAlg::kAes256Cbc: return 32;
  }
  throw std::invalid_argument("symmetric_key_len: unknown algorithm");
}

SecretKey SecretKey::generate(Rng& rng, SymmetricAlg alg) {
  SecretKey k;
  k.alg_ = alg;
  k.material_ = rng.next_bytes(symmetric_key_len(alg));
  return k;
}

SecretKey SecretKey::from_material(Bytes material, SymmetricAlg alg,
                                   PaddingScheme padding) {
  if (material.size() != symmetric_key_len(alg)) {
    throw std::invalid_argument("SecretKey: material length mismatch");
  }
  SecretKey k;
  k.material_ = std::move(material);
  k.alg_ = alg;
  k.padding_ = padding;
  return k;
}

Bytes SecretKey::encrypt(BytesView plaintext, Rng& rng) const {
  if (empty()) throw std::logic_error("SecretKey::encrypt: empty key");
  const Aes cipher(material_);
  return aes_cbc_encrypt(cipher, plaintext, rng);
}

Bytes SecretKey::decrypt(BytesView ciphertext) const {
  if (empty()) throw std::logic_error("SecretKey::decrypt: empty key");
  const Aes cipher(material_);
  return aes_cbc_decrypt(cipher, ciphertext);
}

Bytes SecretKey::serialize() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(alg_));
  w.u8(static_cast<std::uint8_t>(padding_));
  w.bytes(material_);
  return std::move(w).take();
}

SecretKey SecretKey::deserialize(BytesView b) {
  Reader r(b);
  const auto alg = static_cast<SymmetricAlg>(r.u8());
  const auto padding = static_cast<PaddingScheme>(r.u8());
  Bytes material = r.bytes();
  r.expect_done();
  if (padding != PaddingScheme::kPkcs7) {
    throw std::invalid_argument("SecretKey: unsupported padding scheme");
  }
  return from_material(std::move(material), alg, padding);
}

}  // namespace et::crypto
