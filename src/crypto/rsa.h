// RSA public-key cryptography (PKCS#1 v1.5), matching the paper's
// configuration: "1024-bit RSA with 160-bit SHA-1 and PKCS#1Padding" (§6.1).
//
// Provides:
//  * key generation (two-prime, CRT parameters precomputed),
//  * RSASSA-PKCS1-v1_5 signatures over SHA-1 or SHA-256,
//  * RSAES-PKCS1-v1_5 encryption (used to wrap symmetric keys),
//  * serialization of public keys for embedding in credentials and tokens.
//
// NOT constant-time, no blinding — reproduction quality only.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/bytes.h"
#include "src/common/random.h"
#include "src/crypto/bigint.h"

namespace et::crypto {

/// Digest algorithm used inside a PKCS#1 v1.5 signature.
enum class HashAlg : std::uint8_t { kSha1 = 1, kSha256 = 2 };

/// Name of a hash algorithm ("SHA-1", "SHA-256").
std::string hash_alg_name(HashAlg alg);

/// RSA public key: modulus n and public exponent e.
class RsaPublicKey {
 public:
  RsaPublicKey() = default;
  RsaPublicKey(BigInt n, BigInt e);

  /// Verifies an RSASSA-PKCS1-v1_5 signature over `message`.
  [[nodiscard]] bool verify(BytesView message, BytesView signature,
                            HashAlg alg = HashAlg::kSha1) const;

  /// RSAES-PKCS1-v1_5 encryption; plaintext must be <= modulus_len - 11.
  /// Throws std::invalid_argument when too long.
  [[nodiscard]] Bytes encrypt(BytesView plaintext, Rng& rng) const;

  /// Key size in bytes (modulus length).
  [[nodiscard]] std::size_t modulus_len() const;
  [[nodiscard]] const BigInt& n() const { return n_; }
  [[nodiscard]] const BigInt& e() const { return e_; }
  [[nodiscard]] bool empty() const { return n_.is_zero(); }

  /// Wire encoding / decoding.
  [[nodiscard]] Bytes serialize() const;
  static RsaPublicKey deserialize(BytesView b);

  /// SHA-1 fingerprint of the serialized key (key identity).
  [[nodiscard]] Bytes fingerprint() const;

  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;

 private:
  BigInt n_;
  BigInt e_;
};

/// RSA private key with CRT acceleration.
class RsaPrivateKey {
 public:
  RsaPrivateKey() = default;

  /// Signs `message` with RSASSA-PKCS1-v1_5.
  [[nodiscard]] Bytes sign(BytesView message,
                           HashAlg alg = HashAlg::kSha1) const;

  /// RSAES-PKCS1-v1_5 decryption. Throws std::invalid_argument when the
  /// padding is malformed (treat as tamper evidence).
  [[nodiscard]] Bytes decrypt(BytesView ciphertext) const;

  [[nodiscard]] const RsaPublicKey& public_key() const { return pub_; }
  [[nodiscard]] bool empty() const { return pub_.empty(); }

  /// Wire encoding of the full private key (used when a traced entity
  /// delegates a freshly generated signing key to its hosting broker —
  /// always over an encrypted session channel).
  [[nodiscard]] Bytes serialize() const;
  static RsaPrivateKey deserialize(BytesView b);

 private:
  friend struct RsaKeyPairFactory;
  RsaPublicKey pub_;
  BigInt d_;          // private exponent
  BigInt p_, q_;      // prime factors
  BigInt dp_, dq_;    // d mod (p-1), d mod (q-1)
  BigInt qinv_;       // q^{-1} mod p

  /// CRT modular exponentiation m = c^d mod n.
  [[nodiscard]] BigInt private_op(const BigInt& c) const;
};

/// Reusable verification state for one public key: the Montgomery context
/// for the modulus is precomputed once and shared across every signature
/// checked through this object, and the (invariably sparse) public
/// exponent is evaluated by plain square-and-multiply instead of the
/// generic 4-bit-window ladder — for e = 65537 that is ~19 modular
/// multiplications instead of ~40 plus a per-call Montgomery setup.
///
/// This is the batch entry point the per-hop verification pipeline uses:
/// group signatures by key, build one context per key, verify the group in
/// one pass. Verdicts are bit-for-bit identical to RsaPublicKey::verify.
/// Immutable after construction and safe to share across threads.
class RsaVerifyContext {
 public:
  /// `key` is copied; an empty key yields a context that rejects all.
  explicit RsaVerifyContext(const RsaPublicKey& key);

  /// Same contract as RsaPublicKey::verify.
  [[nodiscard]] bool verify(BytesView message, BytesView signature,
                            HashAlg alg = HashAlg::kSha1) const;

  [[nodiscard]] const RsaPublicKey& key() const { return key_; }

 private:
  RsaPublicKey key_;
  std::size_t modulus_len_ = 0;
  // Present when the modulus is odd (every real RSA modulus); degenerate
  // even-modulus keys fall back to the generic mod_exp path.
  std::unique_ptr<Montgomery> mont_;
};

/// A generated key pair.
struct RsaKeyPair {
  RsaPrivateKey private_key;
  RsaPublicKey public_key;
};

/// Generates an RSA key pair with an exactly `bits`-bit modulus
/// (default 1024 as in the paper) and e = 65537.
RsaKeyPair rsa_generate(Rng& rng, std::size_t bits = 1024);

}  // namespace et::crypto
