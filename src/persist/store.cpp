#include "src/persist/store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace et::persist {

namespace {

// "ETS1": entity-tracking snapshot, format 1.
constexpr std::uint32_t kSnapshotMagic = 0x45545331u;
constexpr std::size_t kSnapshotHeader = 12;  // magic + crc + length

void put_u32_be(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

std::uint32_t get_u32_be(const std::uint8_t* in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

}  // namespace

Status SnapshotStore::save(BytesView blob) {
  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    return internal_error("snapshot open " + tmp + ": " +
                          std::strerror(errno));
  }
  Bytes out(kSnapshotHeader + blob.size());
  put_u32_be(out.data(), kSnapshotMagic);
  put_u32_be(out.data() + 4, crc32(blob));
  put_u32_be(out.data() + 8, static_cast<std::uint32_t>(blob.size()));
  std::memcpy(out.data() + kSnapshotHeader, blob.data(), blob.size());
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return internal_error(std::string("snapshot write: ") +
                            std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must never make a not-yet-durable
  // blob the authoritative snapshot.
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) return internal_error("snapshot fsync failed");
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return internal_error("snapshot rename failed");
  }
  return Status::ok();
}

Result<Bytes> SnapshotStore::load() const {
  const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return not_found("no snapshot at " + path_);
    return internal_error("snapshot open: " + std::string(strerror(errno)));
  }
  Bytes file;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return internal_error("snapshot read failed");
    }
    if (n == 0) break;
    file.insert(file.end(), buf, buf + n);
  }
  ::close(fd);
  if (file.size() < kSnapshotHeader) {
    return internal_error("snapshot truncated header");
  }
  if (get_u32_be(file.data()) != kSnapshotMagic) {
    return internal_error("snapshot bad magic");
  }
  const std::uint32_t want_crc = get_u32_be(file.data() + 4);
  const std::uint32_t len = get_u32_be(file.data() + 8);
  if (file.size() != kSnapshotHeader + len) {
    return internal_error("snapshot length mismatch");
  }
  Bytes blob(file.begin() + kSnapshotHeader, file.end());
  if (crc32(blob) != want_crc) return internal_error("snapshot CRC mismatch");
  return blob;
}

void SnapshotStore::remove() const {
  std::error_code ec;
  std::filesystem::remove(path_, ec);
  std::filesystem::remove(path_ + ".tmp", ec);
}

Status DurableStore::open(const Options& options,
                          const std::function<void(BytesView)>& snapshot_cb,
                          const std::function<void(BytesView)>& record_cb) {
  options_ = options;
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    return internal_error("durable store mkdir " + options_.dir + ": " +
                          ec.message());
  }
  snapshot_path_ = options_.dir + "/snapshot.bin";
  snapshot_loaded_ = false;
  const SnapshotStore snap(snapshot_path_);
  Result<Bytes> blob = snap.load();
  if (blob.ok()) {
    if (snapshot_cb) snapshot_cb(*blob);
    snapshot_loaded_ = true;
  } else if (blob.status().code() != Code::kNotFound) {
    // Corrupt snapshot: surface it — replaying the WAL alone would
    // silently resurrect pre-checkpoint state as the whole truth.
    return blob.status();
  }
  Wal::Options wo;
  wo.path = options_.dir + "/wal.log";
  wo.fsync = options_.fsync;
  return wal_.open(wo, record_cb);
}

Status DurableStore::append(BytesView record) { return wal_.append(record); }

Status DurableStore::checkpoint(BytesView blob) {
  if (!wal_.is_open()) return internal_error("checkpoint on closed store");
  SnapshotStore snap(snapshot_path_);
  if (const Status s = snap.save(blob); !s.is_ok()) return s;
  // Only now is the WAL redundant; truncating first would lose every
  // post-snapshot mutation on a crash between the two steps.
  return wal_.truncate_all();
}

Status DurableStore::reset() {
  SnapshotStore(snapshot_path_).remove();
  if (wal_.is_open()) return wal_.truncate_all();
  return Status::ok();
}

}  // namespace et::persist
