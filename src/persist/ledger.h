// Tamper-evident trace ledger (DESIGN.md §16).
//
// The paper's guarantees are only as strong as the availability history a
// tracker can audit: a compromised or buggy broker could drop a FAILED
// trace or reorder a recovery ahead of the outage it ended, and nothing
// downstream would notice. The ledger closes that gap with the classic
// hash-chain construction (*Trinity*'s immutable pub/sub log, PAPERS.md):
// every signed trace a hosting broker publishes is appended to the
// publication topic's chain, and each record's SHA-256 digest covers the
// previous record's digest — so removing, reordering, duplicating or
// editing any record breaks every link after it. `LedgerAuditor::
// verify_chain` walks a chain and reports the exact first broken link.
//
// Chain layout per record (all fields inside the digest):
//
//   digest = SHA256( sequence || issued_at || topic || entity_id ||
//                    trace_type || payload || signature || prev_digest )
//
// Genesis links against 32 zero bytes. `sequence` is per-topic, starting
// at 1 — a gap or repeat is detectable without recomputing hashes, and the
// digest covering it pins it against forgery. The stored `payload` is the
// pre-encryption trace body and `signature` the delegate-key signature of
// the published message, so an auditor holding the delegate public key can
// additionally re-verify provenance record by record.
//
// Ledger appends ride the hot trace-emission path; with FsyncPolicy::
// kNever the cost is one SHA-256 plus a buffered file write (E18 pins the
// overhead < 10%).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/persist/wal.h"

namespace et::persist {

/// One link of a topic's chain.
struct LedgerRecord {
  std::string topic;        // publication topic of the trace message
  std::string entity_id;    // subject of the trace ("" for digests' host)
  std::uint8_t trace_type = 0;
  std::uint64_t sequence = 0;  // per-topic, 1-based, gap-free
  TimePoint issued_at = 0;
  Bytes payload;     // pre-encryption trace body
  Bytes signature;   // delegate-key signature of the published message
  Bytes prev_digest; // 32 bytes; zeros at genesis
  Bytes digest;      // SHA-256 over everything above

  /// Recomputes what `digest` must equal for this record.
  [[nodiscard]] Bytes compute_digest() const;

  [[nodiscard]] Bytes serialize() const;
  /// Throws SerializeError on malformed input.
  static LedgerRecord deserialize(BytesView b);

  friend bool operator==(const LedgerRecord&, const LedgerRecord&) = default;
};

/// Per-topic hash chains, optionally WAL-backed. Not thread-safe: append
/// from the owning broker's node context only (same discipline as the
/// emitter that feeds it).
class TraceLedger {
 public:
  struct Options {
    std::string path;  // empty = in-memory only
    FsyncPolicy fsync = FsyncPolicy::kNever;
  };

  TraceLedger() = default;
  explicit TraceLedger(const Options& options) { (void)open(options); }

  TraceLedger(const TraceLedger&) = delete;
  TraceLedger& operator=(const TraceLedger&) = delete;

  /// Opens (and recovers) the backing log. Records whose chain no longer
  /// verifies after a torn-tail truncation are still loaded — auditing is
  /// the explicit verify_chain pass, not a side effect of recovery.
  Status open(const Options& options);

  /// Appends one trace to `topic`'s chain (and the backing log, if any).
  Status append(const std::string& topic, const std::string& entity_id,
                std::uint8_t trace_type, TimePoint issued_at,
                BytesView payload, BytesView signature);

  [[nodiscard]] std::vector<std::string> topics() const;
  [[nodiscard]] const std::vector<LedgerRecord>& records(
      const std::string& topic) const;
  [[nodiscard]] std::size_t total_records() const { return total_; }
  /// Digest of `topic`'s newest record (empty when no records) — the
  /// value two same-seed runs must agree on.
  [[nodiscard]] Bytes head_digest(const std::string& topic) const;

 private:
  std::map<std::string, std::vector<LedgerRecord>> chains_;
  std::size_t total_ = 0;
  Wal wal_;
  bool durable_ = false;
};

/// Outcome of one chain walk.
struct ChainReport {
  bool ok = true;
  /// Index (into the chain) of the first record whose link is broken;
  /// meaningful only when !ok.
  std::size_t first_broken = 0;
  std::string reason;
};

class LedgerAuditor {
 public:
  /// Walks `chain` in order, checking per-record digest integrity, the
  /// prev-digest links, and the gap-free 1-based sequence. Reports the
  /// first record at which the chain stops being trustworthy: a dropped
  /// record surfaces as a sequence gap at its successor, a reorder or
  /// tamper as a digest/link mismatch at the earliest affected record.
  [[nodiscard]] static ChainReport verify_chain(
      const std::vector<LedgerRecord>& chain);

  /// verify_chain over every topic of `ledger`; one violation line per
  /// broken chain, empty = all verified.
  [[nodiscard]] static std::vector<std::string> verify_all(
      const TraceLedger& ledger);
};

}  // namespace et::persist
