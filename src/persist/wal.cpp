#include "src/persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <vector>

namespace et::persist {

namespace {

constexpr std::size_t kFrameHeader = 8;  // u32 length + u32 crc

/// IEEE CRC-32 lookup table, built once (reflected 0xEDB88320 polynomial).
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u32_be(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

std::uint32_t get_u32_be(const std::uint8_t* in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

Status write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return internal_error(std::string("wal write: ") + std::strerror(errno));
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::ok();
}

}  // namespace

std::uint32_t crc32(BytesView data) {
  const auto& table = crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Bytes wal_frame(BytesView record) {
  Bytes out(kFrameHeader + record.size());
  put_u32_be(out.data(), static_cast<std::uint32_t>(record.size()));
  put_u32_be(out.data() + 4, crc32(record));
  std::memcpy(out.data() + kFrameHeader, record.data(), record.size());
  return out;
}

Wal::~Wal() { close(); }

void Wal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Wal::open(const Options& options,
                 const std::function<void(BytesView)>& replay) {
  close();
  options_ = options;
  record_count_ = 0;
  size_bytes_ = 0;
  recovery_ = {};

  fd_ = ::open(options_.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return internal_error("wal open " + options_.path + ": " +
                          std::strerror(errno));
  }

  // Recovery scan: read the whole file (logs are compacted by snapshot
  // checkpoints, so bounded), replay intact records, stop at the first
  // frame that cannot be valid.
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) return internal_error("wal lseek failed");
  Bytes file(static_cast<std::size_t>(end));
  if (end > 0) {
    if (::lseek(fd_, 0, SEEK_SET) < 0) return internal_error("wal seek");
    std::size_t got = 0;
    while (got < file.size()) {
      const ssize_t n = ::read(fd_, file.data() + got, file.size() - got);
      if (n < 0) {
        if (errno == EINTR) continue;
        return internal_error(std::string("wal read: ") +
                              std::strerror(errno));
      }
      if (n == 0) break;  // file shrank under us; treat the rest as torn
      got += static_cast<std::size_t>(n);
    }
    file.resize(got);
  }

  std::size_t off = 0;
  while (off + kFrameHeader <= file.size()) {
    const std::uint32_t len = get_u32_be(file.data() + off);
    if (len > kMaxWalRecord) break;                    // garbage length
    if (off + kFrameHeader + len > file.size()) break; // torn payload
    const std::uint32_t want = get_u32_be(file.data() + off + 4);
    const BytesView payload(file.data() + off + kFrameHeader, len);
    if (crc32(payload) != want) break;  // bit rot / torn mid-frame
    if (replay) replay(payload);
    ++record_count_;
    off += kFrameHeader + len;
  }
  recovery_.records = record_count_;
  recovery_.truncated_bytes = file.size() - off;
  recovery_.torn_tail = recovery_.truncated_bytes > 0;
  if (recovery_.torn_tail) {
    if (::ftruncate(fd_, static_cast<off_t>(off)) < 0) {
      return internal_error("wal truncate torn tail failed");
    }
  }
  size_bytes_ = off;
  if (::lseek(fd_, static_cast<off_t>(off), SEEK_SET) < 0) {
    return internal_error("wal seek to tail failed");
  }
  return Status::ok();
}

Status Wal::append(BytesView record) {
  if (fd_ < 0) return internal_error("wal append on closed log");
  if (record.size() > kMaxWalRecord) {
    return invalid_argument("wal record exceeds kMaxWalRecord");
  }
  const Bytes frame = wal_frame(record);
  if (const Status s = write_all(fd_, frame.data(), frame.size());
      !s.is_ok()) {
    return s;
  }
  ++record_count_;
  size_bytes_ += frame.size();
  if (options_.fsync == FsyncPolicy::kEveryAppend) return sync();
  return Status::ok();
}

Status Wal::sync() {
  if (fd_ < 0) return internal_error("wal sync on closed log");
  if (::fsync(fd_) < 0) {
    return internal_error(std::string("wal fsync: ") + std::strerror(errno));
  }
  return Status::ok();
}

Status Wal::truncate_all() {
  if (fd_ < 0) return internal_error("wal truncate on closed log");
  if (::ftruncate(fd_, 0) < 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
    return internal_error("wal truncate failed");
  }
  record_count_ = 0;
  size_bytes_ = 0;
  return Status::ok();
}

}  // namespace et::persist
