// Snapshot + WAL composition (DESIGN.md §16).
//
// `SnapshotStore` holds one atomically-replaced blob: writes go to a temp
// file that is fsynced and renamed over the target, so a crash mid
// checkpoint leaves either the old snapshot or the new one, never a
// half-written hybrid. The blob carries a magic + CRC header; a corrupt
// snapshot is reported, not silently replayed.
//
// `DurableStore` is the unit components actually embed: a directory with
// `snapshot.bin` and `wal.log`. Recovery loads the snapshot (full state as
// of the last checkpoint) then replays the WAL (every mutation since).
// `checkpoint()` folds the log into a fresh snapshot and empties it — the
// standard compaction dance, crash-safe at every step because the
// snapshot replace is atomic and a stale WAL replayed over a *newer*
// snapshot is prevented by truncating only after the snapshot rename
// succeeded (replaying a mutation that is already inside the snapshot
// must therefore be idempotent, which insert_or_assign-style state makes
// trivially true).
#pragma once

#include <functional>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/persist/wal.h"

namespace et::persist {

class SnapshotStore {
 public:
  explicit SnapshotStore(std::string path) : path_(std::move(path)) {}

  /// Atomically replaces the snapshot with `blob` (temp + fsync + rename).
  Status save(BytesView blob);

  /// Loads the snapshot. kNotFound when none was ever saved; kInternal
  /// when the file exists but fails its header or CRC check.
  Result<Bytes> load() const;

  /// Removes the snapshot file (cold restart / reset).
  void remove() const;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class DurableStore {
 public:
  struct Options {
    std::string dir;  // created if absent
    FsyncPolicy fsync = FsyncPolicy::kNever;
  };

  DurableStore() = default;

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Opens the store: creates `dir` if needed, loads the snapshot into
  /// `snapshot_cb` (skipped when none exists), replays WAL records through
  /// `record_cb` in append order. Callable again to simulate a restart.
  Status open(const Options& options,
              const std::function<void(BytesView)>& snapshot_cb,
              const std::function<void(BytesView)>& record_cb);

  /// Appends one mutation record to the WAL.
  Status append(BytesView record);

  /// Folds state into a new snapshot and empties the WAL. `blob` is the
  /// caller's full serialized state as of now.
  Status checkpoint(BytesView blob);

  /// Wipes snapshot + WAL (models a cold restart that lost the disk).
  Status reset();

  void close() { wal_.close(); }

  [[nodiscard]] bool is_open() const { return wal_.is_open(); }
  [[nodiscard]] std::uint64_t wal_records() const {
    return wal_.record_count();
  }
  [[nodiscard]] std::uint64_t wal_bytes() const { return wal_.size_bytes(); }
  [[nodiscard]] const Wal::RecoveryStats& recovery() const {
    return wal_.recovery();
  }
  [[nodiscard]] bool snapshot_loaded() const { return snapshot_loaded_; }
  [[nodiscard]] const std::string& dir() const { return options_.dir; }

 private:
  Options options_;
  std::string snapshot_path_;
  Wal wal_;
  bool snapshot_loaded_ = false;
};

}  // namespace et::persist
