#include "src/persist/ledger.h"

#include "src/common/serialize.h"
#include "src/crypto/sha256.h"

namespace et::persist {

namespace {

const Bytes& zero_digest() {
  static const Bytes zeros(crypto::Sha256::kDigestSize, 0);
  return zeros;
}

}  // namespace

Bytes LedgerRecord::compute_digest() const {
  Writer w;
  w.u64(sequence);
  w.i64(issued_at);
  w.str(topic);
  w.str(entity_id);
  w.u8(trace_type);
  w.bytes(payload);
  w.bytes(signature);
  w.raw(prev_digest);
  return crypto::Sha256::digest(std::move(w).take());
}

Bytes LedgerRecord::serialize() const {
  Writer w;
  w.u64(sequence);
  w.i64(issued_at);
  w.str(topic);
  w.str(entity_id);
  w.u8(trace_type);
  w.bytes(payload);
  w.bytes(signature);
  w.bytes(prev_digest);
  w.bytes(digest);
  return std::move(w).take();
}

LedgerRecord LedgerRecord::deserialize(BytesView b) {
  Reader r(b);
  LedgerRecord out;
  out.sequence = r.u64();
  out.issued_at = r.i64();
  out.topic = r.str();
  out.entity_id = r.str();
  out.trace_type = r.u8();
  out.payload = r.bytes();
  out.signature = r.bytes();
  out.prev_digest = r.bytes();
  out.digest = r.bytes();
  r.expect_done();
  return out;
}

Status TraceLedger::open(const Options& options) {
  chains_.clear();
  total_ = 0;
  durable_ = !options.path.empty();
  if (!durable_) {
    wal_.close();
    return Status::ok();
  }
  Wal::Options wo;
  wo.path = options.path;
  wo.fsync = options.fsync;
  return wal_.open(wo, [this](BytesView rec) {
    try {
      LedgerRecord r = LedgerRecord::deserialize(rec);
      ++total_;
      chains_[r.topic].push_back(std::move(r));
    } catch (const SerializeError&) {
      // CRC-valid but undecodable — count nothing; the auditor will
      // surface the hole as a sequence gap.
    }
  });
}

Status TraceLedger::append(const std::string& topic,
                           const std::string& entity_id,
                           std::uint8_t trace_type, TimePoint issued_at,
                           BytesView payload, BytesView signature) {
  auto& chain = chains_[topic];
  LedgerRecord r;
  r.topic = topic;
  r.entity_id = entity_id;
  r.trace_type = trace_type;
  r.sequence = chain.empty() ? 1 : chain.back().sequence + 1;
  r.issued_at = issued_at;
  r.payload.assign(payload.begin(), payload.end());
  r.signature.assign(signature.begin(), signature.end());
  r.prev_digest = chain.empty() ? zero_digest() : chain.back().digest;
  r.digest = r.compute_digest();
  if (durable_) {
    if (const Status s = wal_.append(r.serialize()); !s.is_ok()) return s;
  }
  chain.push_back(std::move(r));
  ++total_;
  return Status::ok();
}

std::vector<std::string> TraceLedger::topics() const {
  std::vector<std::string> out;
  out.reserve(chains_.size());
  for (const auto& [topic, chain] : chains_) out.push_back(topic);
  return out;
}

const std::vector<LedgerRecord>& TraceLedger::records(
    const std::string& topic) const {
  static const std::vector<LedgerRecord> empty;
  const auto it = chains_.find(topic);
  return it == chains_.end() ? empty : it->second;
}

Bytes TraceLedger::head_digest(const std::string& topic) const {
  const auto it = chains_.find(topic);
  if (it == chains_.end() || it->second.empty()) return {};
  return it->second.back().digest;
}

ChainReport LedgerAuditor::verify_chain(
    const std::vector<LedgerRecord>& chain) {
  const Bytes* prev = &zero_digest();
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const LedgerRecord& r = chain[i];
    if (r.sequence != i + 1) {
      return {false, i,
              "sequence gap: want " + std::to_string(i + 1) + " got " +
                  std::to_string(r.sequence)};
    }
    if (r.prev_digest != *prev) {
      return {false, i, "prev-digest link broken"};
    }
    if (r.digest != r.compute_digest()) {
      return {false, i, "record digest mismatch"};
    }
    prev = &r.digest;
  }
  return {};
}

std::vector<std::string> LedgerAuditor::verify_all(const TraceLedger& ledger) {
  std::vector<std::string> out;
  for (const std::string& topic : ledger.topics()) {
    const ChainReport rep = verify_chain(ledger.records(topic));
    if (!rep.ok) {
      out.push_back("ledger chain broken: topic=" + topic + " record=" +
                    std::to_string(rep.first_broken) + " (" + rep.reason +
                    ")");
    }
  }
  return out;
}

}  // namespace et::persist
