// Write-ahead replay log (DESIGN.md §16).
//
// Durable state in this system (TDN advertisements, broker misbehaviour
// tallies, trace ledgers) is small but must survive a crash at any byte:
// the `Wal` is a single append-only file of length+CRC framed records.
// Appends are atomic at the record level — recovery scans from the start,
// replays every record whose frame and checksum verify, and truncates the
// file at the first record that does not (a torn tail from a crash mid
// write, or trailing garbage). The durability contract mirrors the wire
// framing layer's: a record is either replayed exactly as written or it —
// and everything after it — is gone; recovery never yields a torn or
// phantom record.
//
// On-disk record frame (big-endian, matching the wire codec's byte order):
//
//   [u32 payload length][u32 CRC-32 of payload][payload bytes]
//
// Fsync policy is an explicit knob: `kNever` leaves flushing to the OS
// (fastest; a *process* crash still loses nothing because the kernel holds
// the pages, only a host crash can), `kEveryAppend` fsyncs each record
// (paper-trail durability for the trace ledger).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace et::persist {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`. The per-record
/// checksum of the WAL and snapshot formats.
[[nodiscard]] std::uint32_t crc32(BytesView data);

/// When the log file is flushed to stable storage.
enum class FsyncPolicy : std::uint8_t {
  kNever,        // OS page cache decides; survives process crashes only
  kEveryAppend,  // fsync after every record; survives host crashes
};

/// Records larger than this are rejected at append and treated as
/// corruption at recovery (a plausible length field must still be sane).
inline constexpr std::size_t kMaxWalRecord = 16 * 1024 * 1024;

class Wal {
 public:
  struct Options {
    std::string path;
    FsyncPolicy fsync = FsyncPolicy::kNever;
  };

  /// What recovery found and did.
  struct RecoveryStats {
    std::uint64_t records = 0;         // valid records replayed
    std::uint64_t truncated_bytes = 0; // torn tail / garbage removed
    bool torn_tail = false;
  };

  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating if absent) the log at `options.path`, replays every
  /// intact record through `replay` in append order, truncates any torn
  /// tail, and leaves the file positioned for appends. Callable again
  /// after close() — a restart in miniature.
  Status open(const Options& options,
              const std::function<void(BytesView)>& replay);

  /// Appends one record (frame + payload + policy-driven fsync). The
  /// record is only durable-by-contract once append returns OK.
  Status append(BytesView record);

  /// Explicit fsync (checkpoint barriers under FsyncPolicy::kNever).
  Status sync();

  /// Empties the log (after its contents were folded into a snapshot).
  Status truncate_all();

  void close();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t record_count() const { return record_count_; }
  [[nodiscard]] std::uint64_t size_bytes() const { return size_bytes_; }
  [[nodiscard]] const RecoveryStats& recovery() const { return recovery_; }

 private:
  int fd_ = -1;
  Options options_;
  std::uint64_t record_count_ = 0;
  std::uint64_t size_bytes_ = 0;
  RecoveryStats recovery_;
};

/// Frames one record as it would appear in the log — exposed so tests can
/// build corrupt logs byte-by-byte.
[[nodiscard]] Bytes wal_frame(BytesView record);

}  // namespace et::persist
