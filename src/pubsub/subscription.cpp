#include "src/pubsub/subscription.h"

namespace et::pubsub {

bool SubscriptionTable::add(const std::string& pattern,
                            transport::NodeId endpoint) {
  TopicPath compiled(pattern);
  std::string norm = compiled.canonical();
  auto [it, inserted] = table_.try_emplace(std::move(norm));
  if (inserted) it->second.compiled = std::move(compiled);
  const bool first = it->second.subs.empty();
  it->second.subs.insert(endpoint);
  return first;
}

bool SubscriptionTable::remove(const std::string& pattern,
                               transport::NodeId endpoint) {
  const auto it = table_.find(normalize_topic(pattern));
  if (it == table_.end()) return false;
  it->second.subs.erase(endpoint);
  if (it->second.subs.empty()) {
    table_.erase(it);
    return true;
  }
  return false;
}

std::vector<std::string> SubscriptionTable::remove_endpoint(
    transport::NodeId endpoint) {
  std::vector<std::string> emptied;
  for (auto it = table_.begin(); it != table_.end();) {
    it->second.subs.erase(endpoint);
    if (it->second.subs.empty()) {
      emptied.push_back(it->first);
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  return emptied;
}

std::set<transport::NodeId> SubscriptionTable::match(
    const TopicPath& topic) const {
  std::set<transport::NodeId> out;
  for (const auto& [pattern, entry] : table_) {
    if (topic_matches(entry.compiled, topic)) {
      out.insert(entry.subs.begin(), entry.subs.end());
    }
  }
  return out;
}

bool SubscriptionTable::any_match(const TopicPath& topic) const {
  for (const auto& [pattern, entry] : table_) {
    if (topic_matches(entry.compiled, topic)) return true;
  }
  return false;
}

std::vector<std::string> SubscriptionTable::patterns() const {
  std::vector<std::string> out;
  out.reserve(table_.size());
  for (const auto& [pattern, entry] : table_) out.push_back(pattern);
  return out;
}

bool SubscriptionTable::endpoint_matches(transport::NodeId endpoint,
                                         const TopicPath& topic) const {
  for (const auto& [pattern, entry] : table_) {
    if (entry.subs.contains(endpoint) && topic_matches(entry.compiled, topic)) {
      return true;
    }
  }
  return false;
}

}  // namespace et::pubsub
