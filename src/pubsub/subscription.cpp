#include "src/pubsub/subscription.h"

#include <algorithm>

namespace et::pubsub {

namespace {

using Entry = SubscriptionTable::Snapshot::Entry;

struct ByPattern {
  bool operator()(const Entry& e, const std::string& p) const {
    return e.pattern < p;
  }
};

/// Wildcard-free patterns go on the binary-search path: such a pattern
/// matches a topic iff their canonical strings are equal.
bool pattern_has_wildcard(const TopicPath& pattern) {
  return std::any_of(
      pattern.segments().begin(), pattern.segments().end(),
      [](const std::string& s) { return is_wildcard_segment(s); });
}

const Entry* find_exact(const std::vector<Entry>& sorted,
                        const std::string& canon) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), canon, ByPattern{});
  if (it != sorted.end() && it->pattern == canon) return &*it;
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// Snapshot (read path)

std::array<const SubscriptionTable::Snapshot::Shard*, 2>
SubscriptionTable::Snapshot::candidate_shards(const TopicPath& topic) const {
  const Shard* wildcard = shards_[kShardCount].get();
  if (topic.empty()) {
    // Only patterns like "#" (wildcard bucket) can match an empty topic.
    return {wildcard, nullptr};
  }
  const std::size_t i = segment_hash(topic[0]) % kShardCount;
  return {shards_[i].get(), wildcard};
}

std::set<transport::NodeId> SubscriptionTable::Snapshot::match(
    const TopicPath& topic) const {
  std::set<transport::NodeId> out;
  const std::string canon = topic.canonical();
  for (const Shard* shard : candidate_shards(topic)) {
    if (shard == nullptr) continue;
    if (const Entry* e = find_exact(shard->exact, canon)) {
      out.insert(e->subs.begin(), e->subs.end());
    }
    for (const Entry& e : shard->wild) {
      if (topic_matches(e.compiled, topic)) {
        out.insert(e.subs.begin(), e.subs.end());
      }
    }
  }
  return out;
}

bool SubscriptionTable::Snapshot::any_match(const TopicPath& topic) const {
  const std::string canon = topic.canonical();
  for (const Shard* shard : candidate_shards(topic)) {
    if (shard == nullptr) continue;
    if (find_exact(shard->exact, canon) != nullptr) return true;
    for (const Entry& e : shard->wild) {
      if (topic_matches(e.compiled, topic)) return true;
    }
  }
  return false;
}

bool SubscriptionTable::Snapshot::endpoint_matches(
    transport::NodeId endpoint, const TopicPath& topic) const {
  const std::string canon = topic.canonical();
  for (const Shard* shard : candidate_shards(topic)) {
    if (shard == nullptr) continue;
    const Entry* e = find_exact(shard->exact, canon);
    if (e != nullptr && e->subs.contains(endpoint)) return true;
    for (const Entry& w : shard->wild) {
      if (w.subs.contains(endpoint) && topic_matches(w.compiled, topic)) {
        return true;
      }
    }
  }
  return false;
}

std::vector<std::string> SubscriptionTable::Snapshot::patterns() const {
  std::vector<std::string> out;
  out.reserve(count_);
  for (const auto& shard : shards_) {
    for (const Entry& e : shard->exact) out.push_back(e.pattern);
    for (const Entry& e : shard->wild) out.push_back(e.pattern);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Table (write path)

SubscriptionTable::SubscriptionTable() {
  auto snap = std::make_shared<Snapshot>();
  const auto empty = std::make_shared<const Snapshot::Shard>();
  for (auto& shard : snap->shards_) shard = empty;
  snap_.store(std::move(snap), std::memory_order_release);
}

std::size_t SubscriptionTable::shard_of_pattern(const TopicPath& pattern) {
  if (pattern.empty() || is_wildcard_segment(pattern[0])) return kShardCount;
  return segment_hash(pattern[0]) % kShardCount;
}

bool SubscriptionTable::add(const TopicPath& pattern,
                            transport::NodeId endpoint) {
  std::lock_guard lock(write_mu_);
  const auto cur = snap_.load(std::memory_order_relaxed);
  auto next = std::make_shared<Snapshot>(*cur);  // shares all shards

  const std::size_t si = shard_of_pattern(pattern);
  auto shard = std::make_shared<Snapshot::Shard>(*next->shards_[si]);
  std::vector<Entry>& vec =
      pattern_has_wildcard(pattern) ? shard->wild : shard->exact;
  std::string canon = pattern.canonical();
  auto it = std::lower_bound(vec.begin(), vec.end(), canon, ByPattern{});
  bool first = false;
  if (it == vec.end() || it->pattern != canon) {
    vec.insert(it, Entry{std::move(canon), pattern, {endpoint}});
    ++next->count_;
    first = true;
  } else {
    first = it->subs.empty();
    it->subs.insert(endpoint);
  }
  next->shards_[si] = std::move(shard);
  snap_.store(std::move(next), std::memory_order_release);
  return first;
}

bool SubscriptionTable::remove(const TopicPath& pattern,
                               transport::NodeId endpoint) {
  std::lock_guard lock(write_mu_);
  const auto cur = snap_.load(std::memory_order_relaxed);

  const std::size_t si = shard_of_pattern(pattern);
  const std::string canon = pattern.canonical();
  const bool wild = pattern_has_wildcard(pattern);
  const Snapshot::Shard& old_shard = *cur->shards_[si];
  const std::vector<Entry>& old_vec = wild ? old_shard.wild : old_shard.exact;
  auto found =
      std::lower_bound(old_vec.begin(), old_vec.end(), canon, ByPattern{});
  if (found == old_vec.end() || found->pattern != canon) return false;

  auto next = std::make_shared<Snapshot>(*cur);
  auto shard = std::make_shared<Snapshot::Shard>(old_shard);
  std::vector<Entry>& vec = wild ? shard->wild : shard->exact;
  auto it = vec.begin() + (found - old_vec.begin());
  it->subs.erase(endpoint);
  bool emptied = false;
  if (it->subs.empty()) {
    vec.erase(it);
    --next->count_;
    emptied = true;
  }
  next->shards_[si] = std::move(shard);
  snap_.store(std::move(next), std::memory_order_release);
  return emptied;
}

std::vector<std::string> SubscriptionTable::remove_endpoint(
    transport::NodeId endpoint) {
  std::lock_guard lock(write_mu_);
  const auto cur = snap_.load(std::memory_order_relaxed);
  auto next = std::make_shared<Snapshot>(*cur);

  const auto holds_endpoint = [&](const Entry& e) {
    return e.subs.contains(endpoint);
  };
  std::vector<std::string> emptied;
  for (auto& shard_ptr : next->shards_) {
    const bool touched =
        std::any_of(shard_ptr->exact.begin(), shard_ptr->exact.end(),
                    holds_endpoint) ||
        std::any_of(shard_ptr->wild.begin(), shard_ptr->wild.end(),
                    holds_endpoint);
    if (!touched) continue;
    auto shard = std::make_shared<Snapshot::Shard>(*shard_ptr);
    for (std::vector<Entry>* vec : {&shard->exact, &shard->wild}) {
      for (auto it = vec->begin(); it != vec->end();) {
        it->subs.erase(endpoint);
        if (it->subs.empty()) {
          emptied.push_back(it->pattern);
          it = vec->erase(it);
          --next->count_;
        } else {
          ++it;
        }
      }
    }
    shard_ptr = std::move(shard);
  }
  snap_.store(std::move(next), std::memory_order_release);
  std::sort(emptied.begin(), emptied.end());
  return emptied;
}

}  // namespace et::pubsub
