#include "src/pubsub/subscription.h"

#include "src/common/topic_path.h"

namespace et::pubsub {

bool SubscriptionTable::add(const std::string& pattern,
                            transport::NodeId endpoint) {
  auto& subs = table_[normalize_topic(pattern)];
  const bool first = subs.empty();
  subs.insert(endpoint);
  return first;
}

bool SubscriptionTable::remove(const std::string& pattern,
                               transport::NodeId endpoint) {
  const auto it = table_.find(normalize_topic(pattern));
  if (it == table_.end()) return false;
  it->second.erase(endpoint);
  if (it->second.empty()) {
    table_.erase(it);
    return true;
  }
  return false;
}

std::vector<std::string> SubscriptionTable::remove_endpoint(
    transport::NodeId endpoint) {
  std::vector<std::string> emptied;
  for (auto it = table_.begin(); it != table_.end();) {
    it->second.erase(endpoint);
    if (it->second.empty()) {
      emptied.push_back(it->first);
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  return emptied;
}

std::set<transport::NodeId> SubscriptionTable::match(
    std::string_view topic) const {
  std::set<transport::NodeId> out;
  for (const auto& [pattern, subs] : table_) {
    if (topic_matches(pattern, topic)) {
      out.insert(subs.begin(), subs.end());
    }
  }
  return out;
}

bool SubscriptionTable::any_match(std::string_view topic) const {
  for (const auto& [pattern, subs] : table_) {
    if (topic_matches(pattern, topic)) return true;
  }
  return false;
}

std::vector<std::string> SubscriptionTable::patterns() const {
  std::vector<std::string> out;
  out.reserve(table_.size());
  for (const auto& [pattern, subs] : table_) out.push_back(pattern);
  return out;
}

bool SubscriptionTable::endpoint_matches(transport::NodeId endpoint,
                                         std::string_view topic) const {
  for (const auto& [pattern, subs] : table_) {
    if (subs.contains(endpoint) && topic_matches(pattern, topic)) return true;
  }
  return false;
}

}  // namespace et::pubsub
