// Publish/subscribe client: the library entry point for producers and
// consumers.
//
// "Entities are connected to one of the brokers within the broker network;
// an entity uses this broker to funnel messages to the broker network"
// (paper §2). A Client owns one node on the backend, attaches to exactly
// one broker, and offers subscribe/publish plus delivery callbacks.
//
// Threading: callbacks run in the client's node context. Public methods
// are safe to call from outside that context — they enqueue onto the
// client's own context via NetworkBackend::post, so internal state is
// only ever touched by one execution context.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/pubsub/message.h"
#include "src/transport/network.h"

namespace et::pubsub {

/// Invoked per delivered message matching one of the client's patterns.
using MessageHandler = std::function<void(const Message&)>;

/// Invoked with broker acks/errors (subscribe results, rejections).
using StatusHandler = std::function<void(const Status&)>;

class Client {
 public:
  /// Registers a node named after `entity_id`. Attach with connect().
  Client(transport::NetworkBackend& backend, std::string entity_id);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Detaches the node handler so in-flight deliveries can't reach a
  /// destroyed client.
  ~Client();

  /// Links to `broker` with `params` and sends the connect frame.
  /// `on_done` (optional) fires with the outcome.
  void connect(transport::NodeId broker, const transport::LinkParams& params,
               StatusHandler on_done = nullptr);

  /// Registers `handler` for `pattern` and asks the broker to subscribe.
  void subscribe(const std::string& pattern, MessageHandler handler,
                 StatusHandler on_done = nullptr);

  /// Removes local handlers for `pattern` and tells the broker.
  void unsubscribe(const std::string& pattern);

  /// Replays a subscribe frame for every locally registered pattern to the
  /// *current* broker. Broker-side subscription state is per-broker, so a
  /// client that failed over to a new broker must call this after the
  /// connect ack — local handlers are kept, only the broker is told.
  /// Duplicate patterns are sent once (the broker's table dedups anyway).
  void resubscribe_all();

  /// Publishes topic+payload with this client's identity stamped on.
  void publish(const std::string& topic, Bytes payload);

  /// Publishes a fully formed message (tracing layers fill signatures /
  /// tokens before calling this). publisher/sequence/timestamp are filled
  /// in when left at their defaults.
  void publish(Message m);

  /// Handler for broker error frames not tied to a pending request.
  void set_error_handler(StatusHandler handler);

  [[nodiscard]] transport::NodeId node() const { return node_; }
  /// The broker this client attached to (kInvalidNode before connect()).
  [[nodiscard]] transport::NodeId broker() const { return broker_; }
  [[nodiscard]] const std::string& entity_id() const { return entity_id_; }
  [[nodiscard]] bool connected() const { return connected_; }
  [[nodiscard]] transport::NetworkBackend& backend() { return backend_; }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_; }

 private:
  void on_packet(transport::NodeId from, BytesView payload);
  void in_context(transport::Task task);
  /// Serializes `f` to the attached broker — the one wire path every
  /// request frame (connect/subscribe/unsubscribe/publish) goes through.
  Status send_to_broker(const Frame& f);

  transport::NetworkBackend& backend_;
  std::string entity_id_;
  transport::NodeId node_;
  transport::NodeId broker_ = transport::kInvalidNode;
  bool connected_ = false;
  std::uint64_t next_request_ = 1;
  std::uint64_t sequence_ = 0;
  std::uint64_t delivered_ = 0;
  std::vector<std::pair<std::string, MessageHandler>> handlers_;
  std::map<std::uint64_t, StatusHandler> pending_;
  StatusHandler error_handler_;
};

}  // namespace et::pubsub
