#include "src/pubsub/message.h"

namespace et::pubsub {

namespace {
// First wire byte distinguishes pub/sub frames from other protocol
// families sharing a backend (discovery uses a different magic).
constexpr std::uint8_t kPubSubMagic = 0xB5;
}  // namespace

Bytes Message::signable_bytes() const {
  Writer w;
  w.str(topic);
  w.bytes(payload);
  w.str(publisher);
  w.u64(sequence);
  w.i64(timestamp);
  w.bytes(auth_token);
  w.boolean(encrypted);
  return std::move(w).take();
}

void Message::encode(Writer& w) const {
  w.str(topic);
  w.bytes(payload);
  w.str(publisher);
  w.u64(sequence);
  w.i64(timestamp);
  w.bytes(auth_token);
  w.bytes(signature);
  w.boolean(encrypted);
}

Message Message::decode(Reader& r) {
  Message m;
  m.topic = r.str();
  m.payload = r.bytes();
  m.publisher = r.str();
  m.sequence = r.u64();
  m.timestamp = r.i64();
  m.auth_token = r.bytes();
  m.signature = r.bytes();
  m.encrypted = r.boolean();
  return m;
}

std::size_t Message::encoded_size() const {
  return 4 + topic.size() + 4 + payload.size() + 4 + publisher.size() + 8 + 8 +
         4 + auth_token.size() + 4 + signature.size() + 1;
}

MessageView Message::as_view() const {
  MessageView v;
  v.topic = topic;
  v.payload = BytesView(payload);
  v.publisher = publisher;
  v.sequence = sequence;
  v.timestamp = timestamp;
  v.auth_token = BytesView(auth_token);
  v.signature = BytesView(signature);
  v.encrypted = encrypted;
  return v;
}

Bytes MessageView::signable_bytes() const {
  Writer w;
  w.str(topic);
  w.bytes(payload);
  w.str(publisher);
  w.u64(sequence);
  w.i64(timestamp);
  w.bytes(auth_token);
  w.boolean(encrypted);
  return std::move(w).take();
}

Message MessageView::materialize() const {
  Message m;
  m.topic.assign(topic);
  m.payload.assign(payload.begin(), payload.end());
  m.publisher.assign(publisher);
  m.sequence = sequence;
  m.timestamp = timestamp;
  m.auth_token.assign(auth_token.begin(), auth_token.end());
  m.signature.assign(signature.begin(), signature.end());
  m.encrypted = encrypted;
  return m;
}

MessageView MessageView::decode(Reader& r) {
  MessageView m;
  m.topic = r.str_view();
  m.payload = r.bytes_view();
  m.publisher = r.str_view();
  m.sequence = r.u64();
  m.timestamp = r.i64();
  m.auth_token = r.bytes_view();
  m.signature = r.bytes_view();
  m.encrypted = r.boolean();
  return m;
}

Bytes Frame::serialize() const {
  Writer w;
  std::size_t size = 2 + 4 + text.size() + 4 + 4 + detail.size() + 8 + 1;
  if (message) size += message->encoded_size();
  w.reserve(size);
  w.u8(kPubSubMagic);
  w.u8(static_cast<std::uint8_t>(type));
  w.str(text);
  w.u32(status);
  w.str(detail);
  w.u64(request_id);
  w.boolean(message.has_value());
  if (message) message->encode(w);
  return std::move(w).take();
}

Frame Frame::deserialize(BytesView b) {
  Reader r(b);
  if (r.u8() != kPubSubMagic) {
    throw SerializeError("not a pub/sub frame");
  }
  Frame f;
  f.type = static_cast<FrameType>(r.u8());
  if (f.type < FrameType::kConnect || f.type > FrameType::kPeerExchange) {
    throw SerializeError("unknown frame type");
  }
  f.text = r.str();
  f.status = r.u32();
  f.detail = r.str();
  f.request_id = r.u64();
  if (r.boolean()) f.message = Message::decode(r);
  r.expect_done();
  return f;
}

Frame FrameView::materialize() const {
  Frame f;
  f.type = type;
  f.text.assign(text);
  if (message) f.message = message->materialize();
  f.status = status;
  f.detail.assign(detail);
  f.request_id = request_id;
  return f;
}

FrameView FrameView::parse(BytesView b) {
  Reader r(b);
  if (r.u8() != kPubSubMagic) {
    throw SerializeError("not a pub/sub frame");
  }
  FrameView f;
  f.wire = b;
  f.type = static_cast<FrameType>(r.u8());
  if (f.type < FrameType::kConnect || f.type > FrameType::kPeerExchange) {
    throw SerializeError("unknown frame type");
  }
  f.text = r.str_view();
  f.status = r.u32();
  f.detail = r.str_view();
  f.request_id = r.u64();
  if (r.boolean()) f.message = MessageView::decode(r);
  r.expect_done();
  return f;
}

Frame make_connect(std::string entity_id, std::uint64_t request_id) {
  Frame f;
  f.type = FrameType::kConnect;
  f.text = std::move(entity_id);
  f.request_id = request_id;
  return f;
}

Frame make_subscribe(std::string pattern, std::uint64_t request_id) {
  Frame f;
  f.type = FrameType::kSubscribe;
  f.text = std::move(pattern);
  f.request_id = request_id;
  return f;
}

Frame make_unsubscribe(std::string pattern) {
  Frame f;
  f.type = FrameType::kUnsubscribe;
  f.text = std::move(pattern);
  return f;
}

Frame make_publish(Message m) {
  Frame f;
  f.type = FrameType::kPublish;
  f.message = std::move(m);
  return f;
}

Frame make_publish(std::string topic, Bytes payload, std::string publisher) {
  Frame f;
  f.type = FrameType::kPublish;
  Message& m = f.message.emplace();
  m.topic = std::move(topic);
  m.payload = std::move(payload);
  m.publisher = std::move(publisher);
  return f;
}

Bytes encode_publish_frame(const Message& m) {
  Writer w;
  w.reserve(2 + 4 + 4 + 4 + 8 + 1 + m.encoded_size());
  w.u8(kPubSubMagic);
  w.u8(static_cast<std::uint8_t>(FrameType::kPublish));
  w.str({});    // text
  w.u32(0);     // status
  w.str({});    // detail
  w.u64(0);     // request_id
  w.boolean(true);
  m.encode(w);
  return std::move(w).take();
}

Frame make_error(std::uint32_t status, std::string detail,
                 std::uint64_t request_id) {
  Frame f;
  f.type = FrameType::kError;
  f.status = status;
  f.detail = std::move(detail);
  f.request_id = request_id;
  return f;
}

}  // namespace et::pubsub
