#include "src/pubsub/interest_summary.h"

namespace et::pubsub {

std::string summarize_pattern(const TopicPath& pattern, std::size_t depth) {
  if (depth == 0 || pattern.size() <= depth) return pattern.canonical();
  std::string out;
  for (std::size_t i = 0; i < depth; ++i) {
    if (is_wildcard_segment(pattern[i])) return pattern.canonical();
    if (i != 0) out += '/';
    out += pattern[i];
  }
  out += '/';
  out += kMultiLevelWildcard;
  return out;
}

std::optional<std::string> InterestSummaryTable::add(
    const TopicPath& pattern) {
  if (!patterns_.insert(pattern.canonical()).second) return std::nullopt;
  std::string summary = summarize_pattern(pattern, depth_);
  if (++refs_[summary] == 1) return summary;
  return std::nullopt;
}

std::optional<std::string> InterestSummaryTable::remove(
    const TopicPath& pattern) {
  if (patterns_.erase(pattern.canonical()) == 0) return std::nullopt;
  std::string summary = summarize_pattern(pattern, depth_);
  const auto it = refs_.find(summary);
  if (it == refs_.end()) return std::nullopt;  // unreachable by construction
  if (--it->second == 0) {
    refs_.erase(it);
    return summary;
  }
  return std::nullopt;
}

std::vector<std::string> InterestSummaryTable::announced() const {
  std::vector<std::string> out;
  out.reserve(refs_.size());
  for (const auto& [summary, refs] : refs_) out.push_back(summary);
  return out;
}

}  // namespace et::pubsub
