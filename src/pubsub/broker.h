// Broker: the routing node of the publish/subscribe substrate.
//
// "A broker performs the routing function by routing content along to
// other brokers within the broker network. Producers and consumers don't
// interact directly with each other." (paper §2)
//
// Responsibilities implemented here:
//   * client attachment (connect/ack) with claimed entity identities;
//   * subscription management and interest propagation across the broker
//     overlay (reverse-path forwarding; the overlay must be acyclic, which
//     Topology in topology.h guarantees);
//   * topic routing: deliver to matching local clients and local services,
//     forward to interested neighbour brokers with split-horizon;
//   * constrained-topic enforcement at the edge (clients may only perform
//     the actions the grammar grants them — paper §3.1/§4.3);
//   * a pluggable inbound-message filter so the tracing layer can install
//     authorization-token verification for broker-to-broker traffic
//     (paper §4.3: messages without valid tokens are discarded);
//   * denial-of-service bookkeeping: endpoints exceeding the misbehaviour
//     threshold are disconnected (paper §5.2: "the broker will terminate
//     communications with such an entity").
//
// Threading: all mutable state is touched only from the broker's node
// context (its packet handler and timers). Setup calls (peer,
// subscribe_local, set_message_filter) must complete before traffic starts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/topic_path.h"
#include "src/pubsub/constrained_topic.h"
#include "src/pubsub/message.h"
#include "src/pubsub/subscription.h"
#include "src/transport/network.h"

namespace et::pubsub {

/// Callback for broker-local services (tracing) receiving matched messages.
using LocalHandler = std::function<void(const Message&)>;

/// Inbound filter: inspects a message arriving from a neighbour broker or
/// client before routing. Return a non-OK status to discard (counted as
/// misbehaviour of the sender).
using MessageFilter =
    std::function<Status(const Message& msg, transport::NodeId from)>;

/// Invoked (in the broker's context) when a delivery to a directly
/// connected client fails because its link is gone — the pub/sub-level
/// "connection closed" signal the tracing service turns into DISCONNECT
/// traces (paper Table 1).
using ClientUnreachableHandler =
    std::function<void(const std::string& entity_id)>;

/// Counters exposed for benchmarks and tests.
struct BrokerStats {
  std::uint64_t published = 0;        // messages entering routing here
  std::uint64_t forwarded = 0;        // copies sent to neighbour brokers
  std::uint64_t delivered_local = 0;  // copies delivered to local clients
  std::uint64_t discarded = 0;        // filter/constraint rejections
  std::uint64_t disconnects = 0;      // endpoints dropped for misbehaviour
};

class Broker {
 public:
  /// Registers the broker on `backend`. `name` doubles as its publisher
  /// id for broker-generated messages.
  Broker(transport::NetworkBackend& backend, std::string name,
         int misbehaviour_threshold = 5);

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Declares `other` a neighbour broker reachable over an existing link.
  /// Call on both brokers (see connect_brokers in topology.h).
  void peer(transport::NodeId other);

  /// Broker-local service subscription. By default the broker's interest
  /// propagates network-wide so remote publications arrive. With
  /// `local_only` the subscription is suppressed (paper §3.1 Suppress
  /// distribution): only messages reaching THIS broker match — used for
  /// the trace-registration and session topics, which must be served by
  /// the broker the entity is connected to (§3.2), not by every broker.
  void subscribe_local(const std::string& pattern, LocalHandler handler,
                       bool local_only = false);

  /// Publishes a message *as this broker* (constrainer=Broker topics are
  /// allowed). Enters normal routing.
  void publish_from_broker(Message m);

  /// Installs the inbound filter (tracing-token verification).
  void set_message_filter(MessageFilter filter);

  /// Installs the dead-client callback (fires once per vanished client).
  void set_client_unreachable_handler(ClientUnreachableHandler handler);

  [[nodiscard]] transport::NodeId node() const { return node_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const BrokerStats& stats() const { return stats_; }
  [[nodiscard]] transport::NetworkBackend& backend() { return backend_; }

  /// Claimed entity id of a connected client ("" when unknown).
  [[nodiscard]] std::string client_identity(transport::NodeId id) const;

  /// True when `endpoint` has been dropped for repeated misbehaviour.
  [[nodiscard]] bool is_blacklisted(transport::NodeId endpoint) const;

  /// Records one misbehaviour strike; disconnects at the threshold.
  void report_misbehaviour(transport::NodeId endpoint,
                           const std::string& why);

 private:
  void on_packet(transport::NodeId from, Bytes payload);
  void handle_connect(transport::NodeId from, const Frame& f);
  void handle_subscribe(transport::NodeId from, const Frame& f);
  void handle_unsubscribe(transport::NodeId from, const Frame& f);
  void handle_publish(transport::NodeId from, Frame f);
  void route(const Message& m, transport::NodeId arrived_from);
  /// Hot-path routing over a topic that was split and grammar-parsed once
  /// by the caller (handle_publish); the plain overload computes both.
  void route(const Message& m, transport::NodeId arrived_from,
             const TopicPath& path,
             const std::optional<ConstrainedTopic>& ct);
  void send_frame(transport::NodeId to, const Frame& f);
  [[nodiscard]] bool is_neighbour(transport::NodeId id) const {
    return neighbours_.contains(id);
  }

  transport::NetworkBackend& backend_;
  std::string name_;
  transport::NodeId node_;
  int misbehaviour_threshold_;

  std::set<transport::NodeId> neighbours_;
  std::map<transport::NodeId, std::string> clients_;  // node -> entity id
  SubscriptionTable local_subs_;   // clients attached here
  SubscriptionTable remote_subs_;  // neighbour brokers' interest
  struct LocalService {
    std::string pattern;
    TopicPath compiled;  // pattern split once at registration
    LocalHandler handler;
  };
  std::vector<LocalService> local_services_;
  MessageFilter filter_;
  ClientUnreachableHandler unreachable_handler_;
  std::map<transport::NodeId, int> strikes_;
  std::set<transport::NodeId> blacklist_;
  BrokerStats stats_;
  std::uint64_t sequence_ = 0;
};

}  // namespace et::pubsub
