// Broker: the routing node of the publish/subscribe substrate.
//
// "A broker performs the routing function by routing content along to
// other brokers within the broker network. Producers and consumers don't
// interact directly with each other." (paper §2)
//
// Responsibilities implemented here:
//   * client attachment (connect/ack) with claimed entity identities;
//   * subscription management and interest propagation across the broker
//     overlay (reverse-path forwarding; the overlay must be acyclic, which
//     Topology in topology.h guarantees);
//   * topic routing: deliver to matching local clients and local services,
//     forward to interested neighbour brokers with split-horizon;
//   * constrained-topic enforcement at the edge (clients may only perform
//     the actions the grammar grants them — paper §3.1/§4.3);
//   * a pluggable inbound-message filter so the tracing layer can install
//     authorization-token verification for broker-to-broker traffic
//     (paper §4.3: messages without valid tokens are discarded);
//   * denial-of-service bookkeeping: endpoints exceeding the misbehaviour
//     threshold are disconnected (paper §5.2: "the broker will terminate
//     communications with such an entity").
//
// Routing is split into two stages (DESIGN.md §9):
//   * match — resolve the inbound topic against immutable snapshots of
//     the subscription tables and local-service list. Touches no mutable
//     broker state, so it can run on any thread.
//   * send  — invoke matched local services and emit frames. Runs in the
//     broker's node context, which remains the only mutator of sessions,
//     strikes and tables.
// With Options::match_threads > 0 (honoured only on backends reporting
// concurrent_dispatch(), i.e. RealTimeNetwork) the match stage of each
// inbound publish is offloaded to a small worker pool and the send stage
// is posted back to the node context — the node thread stays free to
// accept further traffic while workers match. Relative delivery order of
// concurrently matched messages is then unspecified (per-message delivery
// stays intact); leave match_threads at 0 where ordering or determinism
// matters. With match_threads == 0 both stages run inline, byte-for-byte
// identical to the single-context behaviour.
//
// Threading: all mutable state is touched only from the broker's node
// context (its packet handler and timers). Stats counters are relaxed
// atomics and may be read from any thread. Setup calls (peer,
// subscribe_local, add_client_unreachable_listener) must complete before
// traffic starts. Like packet handlers, in-flight match jobs and deferred
// filter verdicts reference the broker: stop the network before
// destroying it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/atomic_shared_ptr.h"
#include "src/common/stats.h"
#include "src/common/topic_path.h"
#include "src/pubsub/constrained_topic.h"
#include "src/pubsub/interest_summary.h"
#include "src/persist/store.h"
#include "src/pubsub/message.h"
#include "src/pubsub/subscription.h"
#include "src/transport/network.h"

namespace et::pubsub {

class Broker;

/// Callback for broker-local services (tracing) receiving matched messages.
using LocalHandler = std::function<void(const Message&)>;

/// Verdict of an inbound-message filter.
///
/// kDefer is the asynchronous-verification hook: the filter materializes
/// the view it was handed (MessageView::materialize — the view dies with
/// the packet handler call) and promises to resolve the owning copy later
/// through exactly one of the broker's deferred-verdict entry points —
/// Broker::release_deferred to admit it into routing, or
/// Broker::reject_deferred to apply the same discard + misbehaviour
/// accounting an inline rejection gets.
struct FilterVerdict {
  enum class Action : std::uint8_t { kAccept, kReject, kDefer };

  Action action = Action::kAccept;
  Status status = Status::ok();  // rejection reason when kReject

  static FilterVerdict accept() { return {}; }
  static FilterVerdict reject(Status why) {
    return {Action::kReject, std::move(why)};
  }
  static FilterVerdict defer() { return {Action::kDefer, Status::ok()}; }

  [[nodiscard]] bool accepted() const { return action == Action::kAccept; }
  [[nodiscard]] bool rejected() const { return action == Action::kReject; }
  [[nodiscard]] bool deferred() const { return action == Action::kDefer; }
};

/// Inbound filter: inspects a message arriving from a neighbour broker or
/// client before routing. Runs in the broker's node context. `self` is the
/// invoking broker — filters that defer keep it for the later
/// release_deferred/reject_deferred call; inline filters ignore it. The
/// message is a borrowed view into the wire bytes (valid only for this
/// call): accept/reject verdicts cost no copy, and a deferring filter
/// materializes exactly the messages it parks.
using MessageFilter = std::function<FilterVerdict(
    Broker& self, const MessageView& msg, transport::NodeId from)>;

/// Invoked (in the broker's context) when a delivery to a directly
/// connected client fails because its link is gone — the pub/sub-level
/// "connection closed" signal the tracing service turns into DISCONNECT
/// traces (paper Table 1).
using ClientUnreachableHandler =
    std::function<void(const std::string& entity_id)>;

/// One consistent read of a broker's counters (see Broker::stats()).
struct BrokerStats {
  std::uint64_t published = 0;        // messages entering routing here
  std::uint64_t forwarded = 0;        // copies sent to neighbour brokers
  std::uint64_t delivered_local = 0;  // copies delivered to local clients
  std::uint64_t discarded = 0;        // filter/constraint rejections
  std::uint64_t disconnects = 0;      // endpoints dropped for misbehaviour
  /// Owning Message copies built out of wire views (slow-path decodes:
  /// local-service delivery, deferred verification, worker-pool jobs,
  /// non-canonical topics). The copies-per-hop measure E15 reports: a
  /// pure-forward hop contributes 0 here.
  std::uint64_t materialized = 0;
  /// Frames forwarded by re-sending the original wire bytes (no owning
  /// Message, no re-serialization).
  std::uint64_t view_forwards = 0;
};

/// The live counters behind BrokerStats: relaxed atomics, incremented
/// from the broker's contexts and readable from any thread. snapshot()
/// is the consistent accessor benches and tests should use.
struct BrokerCounters {
  RelaxedCounter published;
  RelaxedCounter forwarded;
  RelaxedCounter delivered_local;
  RelaxedCounter discarded;
  RelaxedCounter disconnects;
  RelaxedCounter materialized;
  RelaxedCounter view_forwards;

  [[nodiscard]] BrokerStats snapshot() const {
    return {published.get(),  forwarded.get(),    delivered_local.get(),
            discarded.get(),  disconnects.get(),  materialized.get(),
            view_forwards.get()};
  }
};

class Broker {
 public:
  /// Batch-first interest declaration: one subscription edge covering
  /// everything under `prefix` instead of one edge per concrete topic.
  /// `depth` > 0 truncates the prefix to its first `depth` segments
  /// before widening, so interests registered for sibling subtrees
  /// collapse into the same upstream edge.
  struct Interest {
    std::string prefix;
    std::size_t depth = 0;
  };

  /// Everything a broker can be configured with, in one place.
  /// Construction from Options is the only configuration path — the
  /// legacy name/threshold constructor and the set_message_filter /
  /// set_client_unreachable_handler shims were retired; broker-local
  /// services needing disconnect notifications register listeners via
  /// add_client_unreachable_listener instead.
  struct Options {
    /// Broker name; doubles as its publisher id for broker-generated
    /// messages.
    std::string name;
    /// Strikes before an endpoint is disconnected (paper §5.2).
    int misbehaviour_threshold = 5;
    /// Inbound filter (tracing-token verification); may be empty.
    MessageFilter message_filter;
    /// Dead-client callback (fires once per vanished client); may be
    /// empty. Further listeners can be appended after construction with
    /// add_client_unreachable_listener.
    ClientUnreachableHandler client_unreachable_handler;
    /// Worker threads for the match stage of routing. 0 = match inline
    /// in the node context (required for deterministic VirtualTimeNetwork
    /// runs; the broker clamps to 0 on backends without
    /// concurrent_dispatch()).
    int match_threads = 0;
    /// Durable misbehaviour state directory (DESIGN.md §16): strike
    /// counters and the blacklist survive a restart-with-state when set,
    /// so a misbehaver cannot launder its record by waiting out a broker
    /// deploy. Empty = in-memory only, the historical behaviour.
    std::string misbehaviour_persist_dir;
    persist::FsyncPolicy misbehaviour_fsync = persist::FsyncPolicy::kNever;
    /// Hierarchical interest aggregation (interest_summary.h). 0 keeps
    /// the legacy behaviour: every pattern re-announced verbatim at every
    /// hop. With depth d > 0, interest propagated to a neighbour broker
    /// is collapsed to one refcounted `<first d segments>/#` edge per
    /// (neighbour, prefix) — per-broker interest state becomes
    /// O(prefixes), at the cost of some false-positive forwarding inside
    /// a summarized prefix. All brokers of an overlay should agree on the
    /// depth.
    std::size_t interest_summary_depth = 0;
  };

  /// Registers the broker on `backend`, fully configured.
  Broker(transport::NetworkBackend& backend, Options options);

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Joins the match worker pool. The network must already be stopped
  /// (or this broker's node quiesced) — see the threading note above.
  ~Broker();

  /// Declares `other` a neighbour broker reachable over an existing link.
  /// Call on both brokers (see connect_brokers in topology.h). Safe at
  /// runtime from the broker's node context (repair re-peering posts in).
  void peer(transport::NodeId other);

  /// Reverses peer(): forgets the neighbour, drops its outbound interest
  /// summaries, and removes every pattern it had announced to us —
  /// patterns left with no other local or remote interest are retracted
  /// from the remaining neighbours, so no stale remote-interest edge keeps
  /// routing traffic toward a dead link. Node context only.
  void unpeer(transport::NodeId other);

  /// Current neighbour set. Node context only (mutated by peer/unpeer).
  [[nodiscard]] const std::set<transport::NodeId>& neighbours() const {
    return neighbours_;
  }

  /// Invoked in the broker's node context whenever the neighbour set
  /// changes: peer() fires (id, true), unpeer() fires (id, false).
  using PeerListener = std::function<void(transport::NodeId, bool added)>;
  void add_peer_listener(PeerListener listener);

  /// Handler for broker-to-broker link-maintenance frames (kKeepalive,
  /// kPeerExchange) — they never enter routing. Unhandled frames are
  /// ignored. A setup call like subscribe_local: install before traffic.
  using LinkFrameHandler =
      std::function<void(transport::NodeId from, const FrameView& f)>;
  void set_link_handler(LinkFrameHandler handler);

  /// Sends a link-maintenance frame to a neighbour (node context only).
  void send_link_frame(transport::NodeId to, const Frame& f) {
    send_frame(to, f);
  }

  /// Broker-local service subscription. By default the broker's interest
  /// propagates network-wide so remote publications arrive. With
  /// `local_only` the subscription is suppressed (paper §3.1 Suppress
  /// distribution): only messages reaching THIS broker match — used for
  /// the trace-registration and session topics, which must be served by
  /// the broker the entity is connected to (§3.2), not by every broker.
  void subscribe_local(const std::string& pattern, LocalHandler handler,
                       bool local_only = false);

  /// Declares summarized broker-level interest (see Interest): compiles
  /// the prefix to one wildcard pattern and subscribes `handler` to it via
  /// subscribe_local, producing a single upstream edge however many
  /// concrete topics live below. The batch-first replacement for
  /// subscribing N concrete topics one at a time.
  void register_interest(const Interest& interest, LocalHandler handler,
                         bool local_only = false);

  /// Anti-entropy resync of propagated interest. Re-announces every
  /// summarized edge to every current neighbour, back-filling neighbours
  /// that joined after propagation happened and neighbours that lost
  /// state (restart, heal). Receiving-side subscription adds are
  /// idempotent, so resync is always safe to call; it deliberately widens
  /// split-horizon exclusions (a pattern learned from neighbour A is
  /// re-announced to A too), which on an acyclic overlay costs at most
  /// one echoed hop of traffic and can never loop.
  void resync_interest();

  /// Publishes a message *as this broker* (constrainer=Broker topics are
  /// allowed). Enters normal routing.
  void publish_from_broker(Message m);

  /// Appends a dead-client listener (fires after any handler given in
  /// Options, in registration order). A setup call like subscribe_local:
  /// must complete before traffic starts.
  void add_client_unreachable_listener(ClientUnreachableHandler handler);

  // --- deferred-verdict hooks (node context only) -------------------------
  // A message filter that answered FilterVerdict::defer() resolves the
  // parked message through exactly one of these. Both must be invoked in
  // this broker's node context (post() back if the decision was computed
  // on another thread).

  /// Admits a previously deferred message into routing, as if the filter
  /// had accepted it inline.
  void release_deferred(Message m, transport::NodeId from);

  /// Discards a previously deferred message: counted against the sender
  /// exactly like an inline filter rejection (discard + misbehaviour
  /// strike, disconnecting repeat offenders).
  void reject_deferred(transport::NodeId from, const Status& why);

  [[nodiscard]] transport::NodeId node() const { return node_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  /// Consistent counter snapshot; safe from any thread.
  [[nodiscard]] BrokerStats stats() const { return counters_.snapshot(); }
  [[nodiscard]] transport::NetworkBackend& backend() { return backend_; }
  /// Match-stage worker threads actually in use (0 after clamping).
  [[nodiscard]] int match_threads() const;

  /// Interest edges this broker holds: registered patterns across the
  /// local and remote subscription tables. The per-broker state the E16
  /// scale bench tracks against entity count.
  [[nodiscard]] std::size_t interest_edges() const {
    return local_subs_.pattern_count() + remote_subs_.pattern_count();
  }

  /// Summarized edges this broker has announced upstream, across all
  /// neighbour links (0 when interest_summary_depth is 0 and nothing has
  /// propagated).
  [[nodiscard]] std::size_t summarized_edges() const;

  /// Claimed entity id of a connected client ("" when unknown).
  [[nodiscard]] std::string client_identity(transport::NodeId id) const;

  /// True when `endpoint` has been dropped for repeated misbehaviour.
  [[nodiscard]] bool is_blacklisted(transport::NodeId endpoint) const;

  /// Records one misbehaviour strike; disconnects at the threshold.
  void report_misbehaviour(transport::NodeId endpoint,
                           const std::string& why);

  // --- durable misbehaviour state (no-ops unless configured) ------------

  [[nodiscard]] bool misbehaviour_durable() const {
    return misbehaviour_store_.is_open();
  }
  [[nodiscard]] std::size_t blacklist_size() const {
    return blacklist_.size();
  }

  /// Folds the misbehaviour replay log into a fresh snapshot.
  Status checkpoint_misbehaviour();

  /// Drops in-memory strikes and the blacklist — the process died — then
  /// either recovers them from the durable store (`with_state`) or wipes
  /// the store too (cold restart). Node context only; sessions and
  /// subscriptions are untouched (clients re-register through the normal
  /// failover path), only the offender ledger is at stake here.
  void restart_misbehaviour_state(bool with_state);

  [[nodiscard]] const persist::DurableStore& misbehaviour_store() const {
    return misbehaviour_store_;
  }

 private:
  struct LocalService {
    std::string pattern;
    TopicPath compiled;  // pattern split once at registration
    LocalHandler handler;
  };
  using ServiceList = std::vector<LocalService>;

  /// Result of the match stage: everything the send stage needs, resolved
  /// entirely from immutable snapshots (safe to compute on any thread).
  struct MatchPlan {
    std::shared_ptr<const ServiceList> services;  // pins handler lifetimes
    std::vector<std::size_t> matched_services;    // indices into *services
    std::set<transport::NodeId> local_targets;
    std::set<transport::NodeId> remote_targets;
  };

  class MatchPool;

  void on_packet(transport::NodeId from, BytesView payload);
  void handle_connect(transport::NodeId from, const FrameView& f);
  void handle_subscribe(transport::NodeId from, const FrameView& f);
  void handle_unsubscribe(transport::NodeId from, const FrameView& f);
  void handle_publish(transport::NodeId from, const FrameView& f);

  /// Plain-path routing: splits and grammar-parses the topic, then
  /// matches + sends inline.
  void route(Message m, transport::NodeId arrived_from);
  /// Owning-message routing over a topic split and grammar-parsed once by
  /// the caller (broker-originated and deferred-release messages).
  /// Dispatches to the worker pool when one is configured.
  void route(Message m, transport::NodeId arrived_from, TopicPath path,
             std::optional<ConstrainedTopic> ct);
  /// View hot path: routes the inbound frame without materializing unless
  /// a consumer needs an owning Message (worker-pool job, local service).
  void route(const FrameView& f, transport::NodeId arrived_from,
             TopicPath path, std::optional<ConstrainedTopic> ct);
  /// Match stage; const and snapshot-only — thread-safe by construction.
  [[nodiscard]] MatchPlan compute_match(
      const TopicPath& path, const std::optional<ConstrainedTopic>& ct) const;
  /// Send stage (owning path); node context only. Serializes the publish
  /// frame once and shares the buffer across every destination.
  void execute_send(const Message& m, transport::NodeId arrived_from,
                    const MatchPlan& plan);
  /// Send stage (view path): forwards the original wire bytes; the only
  /// materialization is one owning copy when a local service matched.
  void execute_send(const FrameView& f, transport::NodeId arrived_from,
                    const MatchPlan& plan);

  /// Interest propagation to neighbour brokers (split horizon: `except`
  /// is skipped; pass kInvalidNode to address all neighbours). With
  /// summarization on, both consult the per-neighbour summary tables and
  /// emit only edge-creating announces / edge-emptying retractions.
  void propagate_subscribe(const TopicPath& compiled,
                           const std::string& pattern,
                           transport::NodeId except);
  void propagate_unsubscribe(const TopicPath& compiled,
                             const std::string& pattern,
                             transport::NodeId except);
  /// The (lazily created) summary table for one neighbour link.
  InterestSummaryTable& summary_for(transport::NodeId neighbour);

  void send_frame(transport::NodeId to, const Frame& f);

  void open_misbehaviour_store();
  void persist_strike(transport::NodeId endpoint, int strikes,
                      bool blacklisted);
  void apply_misbehaviour_record(BytesView rec);
  void apply_misbehaviour_snapshot(BytesView blob);
  [[nodiscard]] Bytes misbehaviour_blob() const;
  /// Sends pre-serialized frame bytes (shared across a fan-out) with the
  /// same unreachable-client bookkeeping as send_frame.
  void send_wire(transport::NodeId to, transport::SharedPayload wire);
  /// Common kUnavailable teardown for send_frame/send_wire.
  void note_send_status(transport::NodeId to, const Status& s);
  [[nodiscard]] bool is_neighbour(transport::NodeId id) const {
    return neighbours_.contains(id);
  }

  transport::NetworkBackend& backend_;
  std::string name_;
  transport::NodeId node_;
  int misbehaviour_threshold_;

  std::set<transport::NodeId> neighbours_;
  /// Outbound interest summaries, one table per neighbour link (see
  /// interest_summary.h). Maintained at depth 0 too — the tables then
  /// record verbatim announcements so resync_interest() works in both
  /// modes — but propagation *decisions* at depth 0 are byte-identical to
  /// the legacy re-announce-everything behaviour.
  std::map<transport::NodeId, InterestSummaryTable> summaries_;
  std::size_t summary_depth_ = 0;
  std::map<transport::NodeId, std::string> clients_;  // node -> entity id
  SubscriptionTable local_subs_;   // clients attached here
  SubscriptionTable remote_subs_;  // neighbour brokers' interest
  /// Immutable snapshot of local services; republished on subscribe_local
  /// (RCU like the subscription tables, and for the same reason: the
  /// match stage may read it from a worker thread, and handlers may
  /// register further services while a send stage iterates it).
  AtomicSharedPtr<const ServiceList> local_services_;
  MessageFilter filter_;
  std::vector<ClientUnreachableHandler> unreachable_listeners_;
  std::vector<PeerListener> peer_listeners_;
  LinkFrameHandler link_handler_;
  std::map<transport::NodeId, int> strikes_;
  std::set<transport::NodeId> blacklist_;
  persist::DurableStore misbehaviour_store_;
  persist::FsyncPolicy misbehaviour_fsync_ = persist::FsyncPolicy::kNever;
  std::string misbehaviour_dir_;
  BrokerCounters counters_;
  std::uint64_t sequence_ = 0;
  std::unique_ptr<MatchPool> match_pool_;  // null when match_threads == 0
};

}  // namespace et::pubsub
