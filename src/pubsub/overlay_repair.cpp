#include "src/pubsub/overlay_repair.h"

#include <algorithm>
#include <charconv>

#include "src/common/logging.h"

namespace et::pubsub {

using transport::NodeId;

namespace {

// SplitMix64 finalizer: the deterministic, platform-independent mixer
// behind the candidate scoring (std::hash would vary by implementation).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// RAPTEE-style candidate score: a keyed hash of the ordered endpoint
// names. Same seed -> same total order over candidate pairs everywhere.
std::uint64_t score_pair(std::uint64_t seed, const std::string& a,
                         const std::string& b) {
  std::uint64_t h = mix64(seed);
  for (const char c : a) h = mix64(h ^ static_cast<unsigned char>(c));
  h = mix64(h ^ 0x5ca1ab1eull);
  for (const char c : b) h = mix64(h ^ static_cast<unsigned char>(c));
  return h;
}

std::pair<std::size_t, std::size_t> norm_edge(std::size_t a, std::size_t b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

// ---------------------------------------------------------------------------
// OverlayRepairService

OverlayRepairService::OverlayRepairService(Broker& broker,
                                           RepairPolicy* policy,
                                           Options options)
    : broker_(broker),
      backend_(broker.backend()),
      policy_(policy),
      options_(options) {
  TimerWheel::Scheduler sched;
  sched.schedule = [this](Duration d, std::function<void()> fn) {
    return backend_.schedule(broker_.node(), d, std::move(fn));
  };
  sched.cancel = [this](std::uint64_t id) { backend_.cancel(id); };
  sched.now = [this] { return backend_.now(); };
  wheel_ = std::make_unique<TimerWheel>(std::move(sched));
  broker_.set_link_handler(
      [this](NodeId from, const FrameView& f) { on_link_frame(from, f); });
  broker_.add_peer_listener(
      [this](NodeId peer, bool added) { on_peer_change(peer, added); });
}

OverlayRepairService::~OverlayRepairService() = default;

void OverlayRepairService::start() {
  backend_.post(broker_.node(), [this] {
    if (started_) return;
    started_ = true;
    {
      std::lock_guard lock(dir_mu_);
      directory_[broker_.name()] = broker_.node();
      for (const NodeId n : broker_.neighbours()) {
        directory_[backend_.node_name(n)] = n;
      }
    }
    for (const NodeId n : broker_.neighbours()) watches_.try_emplace(n);
    wheel_->schedule(options_.keepalive_interval, [this] { tick(); });
  });
}

std::map<std::string, NodeId> OverlayRepairService::directory() const {
  std::lock_guard lock(dir_mu_);
  return directory_;
}

bool OverlayRepairService::knows(const std::string& name) const {
  std::lock_guard lock(dir_mu_);
  return directory_.contains(name);
}

OverlayRepairService::Stats OverlayRepairService::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

void OverlayRepairService::on_peer_change(NodeId peer, bool added) {
  if (added) {
    watches_.try_emplace(peer);
    std::lock_guard lock(dir_mu_);
    directory_[backend_.node_name(peer)] = peer;
  } else {
    watches_.erase(peer);
  }
}

void OverlayRepairService::on_link_frame(NodeId from, const FrameView& f) {
  const auto it = watches_.find(from);
  if (it == watches_.end()) return;  // not a neighbour (stale probe)
  // Any frame from a watched peer is proof of life — a lossy link has to
  // kill probes, acks AND the peer's own probes for a full ladder of
  // ticks to produce a false dead declaration.
  it->second.misses = 0;
  it->second.suspected = false;
  it->second.saw_activity = true;
  if (f.type == FrameType::kKeepalive && f.status == 0) {
    Frame ack;
    ack.type = FrameType::kKeepalive;
    ack.status = 1;
    ack.request_id = f.request_id;
    broker_.send_link_frame(from, ack);
    std::lock_guard lock(stats_mu_);
    ++stats_.acks_sent;
  } else if (f.type == FrameType::kPeerExchange) {
    merge_directory(f.text);
  }
}

void OverlayRepairService::tick() {
  std::vector<NodeId> dead;
  for (auto& [peer, w] : watches_) {
    if (!w.saw_activity) {
      ++w.misses;
      if (!w.suspected && w.misses >= options_.suspect_misses) {
        w.suspected = true;
        ET_LOG(kInfo) << broker_.name() << ": peer "
                      << backend_.node_name(peer) << " suspected ("
                      << w.misses << " silent ticks)";
        std::lock_guard lock(stats_mu_);
        ++stats_.suspects;
      }
      if (w.misses >= options_.dead_misses) {
        dead.push_back(peer);
        continue;
      }
    }
    w.saw_activity = false;
    Frame probe;
    probe.type = FrameType::kKeepalive;
    probe.request_id = ++seq_;
    broker_.send_link_frame(peer, probe);
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.probes_sent;
    }
  }
  for (const NodeId peer : dead) declare_dead(peer);
  if (options_.gossip_every > 0 && --ticks_until_gossip_ <= 0) {
    ticks_until_gossip_ = options_.gossip_every;
    send_gossip();
  }
  wheel_->schedule(options_.keepalive_interval, [this] { tick(); });
}

void OverlayRepairService::send_gossip() {
  std::string record;
  {
    std::lock_guard lock(dir_mu_);
    for (const auto& [name, node] : directory_) {
      record += name;
      record += '=';
      record += std::to_string(node);
      record += ';';
    }
  }
  Frame gossip;
  gossip.type = FrameType::kPeerExchange;
  gossip.text = std::move(record);
  for (const auto& [peer, w] : watches_) {
    broker_.send_link_frame(peer, gossip);
  }
  std::lock_guard lock(stats_mu_);
  stats_.gossip_sent += watches_.size();
}

void OverlayRepairService::merge_directory(std::string_view record) {
  std::uint64_t learned = 0;
  std::lock_guard lock(dir_mu_);
  while (!record.empty()) {
    const std::size_t end = record.find(';');
    const std::string_view entry =
        end == std::string_view::npos ? record : record.substr(0, end);
    record = end == std::string_view::npos ? std::string_view()
                                           : record.substr(end + 1);
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    NodeId node = transport::kInvalidNode;
    const auto* last = entry.data() + entry.size();
    if (std::from_chars(entry.data() + eq + 1, last, node).ptr != last) {
      continue;  // malformed entry; skip defensively
    }
    if (directory_.emplace(std::string(entry.substr(0, eq)), node).second) {
      ++learned;
    }
  }
  if (learned > 0) {
    std::lock_guard slock(stats_mu_);
    stats_.gossip_merged += learned;
  }
}

void OverlayRepairService::declare_dead(NodeId peer) {
  ET_LOG(kWarn) << broker_.name() << ": peer " << backend_.node_name(peer)
                << " declared dead after " << options_.dead_misses
                << " silent ticks";
  watches_.erase(peer);
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.peers_declared_dead;
  }
  // Teardown first — routing must stop leaning on the dead edge even if
  // no repair follows — then hand the cut to the deployment's policy.
  broker_.unpeer(peer);
  if (policy_ != nullptr) {
    policy_->report_peer_dead(broker_.node(), peer);
  }
}

// ---------------------------------------------------------------------------
// RepairPolicy

RepairPolicy::RepairPolicy(transport::NetworkBackend& backend,
                           Topology& topology, Options options)
    : backend_(backend), topology_(topology), options_(options) {}

void RepairPolicy::attach(std::size_t index, Broker& broker,
                          OverlayRepairService& service) {
  std::lock_guard lock(mu_);
  members_[broker.node()] = Member{index, &broker, &service};
  nodes_[index] = broker.node();
}

std::vector<std::string> RepairPolicy::action_log() const {
  std::lock_guard lock(mu_);
  return log_;
}

RepairPolicy::Stats RepairPolicy::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void RepairPolicy::seed_edges_locked() {
  if (seeded_) return;
  seeded_ = true;
  for (const auto& [a, b] : topology_.edges()) alive_.insert(norm_edge(a, b));
}

void RepairPolicy::log_locked(const std::string& what) {
  log_.push_back("t=" + std::to_string(backend_.now()) + " " + what);
}

std::vector<std::size_t> RepairPolicy::components_locked() const {
  std::vector<std::size_t> root(topology_.size());
  for (std::size_t i = 0; i < root.size(); ++i) root[i] = i;
  const auto find = [&root](std::size_t i) {
    while (root[i] != i) {
      root[i] = root[root[i]];
      i = root[i];
    }
    return i;
  };
  for (const auto& [a, b] : alive_) root[find(a)] = find(b);
  for (std::size_t i = 0; i < root.size(); ++i) root[i] = find(i);
  return root;
}

void RepairPolicy::report_peer_dead(NodeId reporter_node, NodeId dead_node) {
  std::lock_guard lock(mu_);
  seed_edges_locked();
  ++stats_.reports;
  const auto ri = members_.find(reporter_node);
  const auto di = members_.find(dead_node);
  if (ri == members_.end() || di == members_.end()) return;
  const std::size_t r = ri->second.index;
  const std::size_t d = di->second.index;
  const std::string& rn = ri->second.broker->name();
  const std::string& dn = di->second.broker->name();
  log_locked("peer-dead " + rn + "-" + dn + " reported by " + rn);

  if (alive_.erase(norm_edge(r, d)) > 0) topology_.retire_edge(r, d);

  const std::vector<std::size_t> comp = components_locked();
  if (comp[r] == comp[d]) {
    // The other endpoint (or an earlier repair) already rewired this cut.
    log_locked("still-connected " + rn + "-" + dn + ", no action");
    return;
  }
  ++stats_.splits;

  // 1) A pre-provisioned standby link crossing the split is the cheapest
  //    repair: the transport link already exists, peering it suffices.
  if (options_.activate_standby) {
    for (const auto& [a, b] : topology_.standby_edges()) {
      if (a >= comp.size() || b >= comp.size()) continue;
      const bool crosses = (comp[a] == comp[r] && comp[b] == comp[d]) ||
                           (comp[b] == comp[r] && comp[a] == comp[d]);
      if (!crosses) continue;
      const Member& ma = members_.at(nodes_.at(a));
      const Member& mb = members_.at(nodes_.at(b));
      log_locked("activate-standby " + ma.broker->name() + "-" +
                 mb.broker->name());
      wire_edge_locked(a, b);
      ++stats_.standby_activations;
      return;
    }
  }

  // 2) RAPTEE-style re-peering: score every candidate pair (x on the
  //    reporter's side, y on the detached side) that x has learned about
  //    through peer-exchange gossip; highest keyed-hash score wins, ties
  //    broken lexicographically. The cut pair itself is excluded (that
  //    path is known bad), as are pairs already tried twice (a crashed —
  //    not cut — endpoint would otherwise induce a repair loop).
  if (options_.repeer) {
    bool found = false;
    std::size_t best_x = 0;
    std::size_t best_y = 0;
    std::uint64_t best_score = 0;
    for (const auto& [x, nx] : nodes_) {
      if (comp[x] != comp[r]) continue;
      const Member& mx = members_.at(nx);
      for (const auto& [y, ny] : nodes_) {
        if (comp[y] != comp[d]) continue;
        if (norm_edge(x, y) == norm_edge(r, d)) continue;
        const auto tried = attempts_.find(norm_edge(x, y));
        if (tried != attempts_.end() && tried->second >= 2) continue;
        const Member& my = members_.at(ny);
        if (!mx.service->knows(my.broker->name())) continue;
        const std::uint64_t score =
            score_pair(options_.seed, mx.broker->name(), my.broker->name());
        const bool better =
            !found || score > best_score ||
            (score == best_score &&
             std::make_pair(mx.broker->name(), my.broker->name()) <
                 std::make_pair(members_.at(nodes_.at(best_x)).broker->name(),
                                members_.at(nodes_.at(best_y))
                                    .broker->name()));
        if (better) {
          found = true;
          best_x = x;
          best_y = y;
          best_score = score;
        }
      }
    }
    if (found) {
      const Member& mx = members_.at(nodes_.at(best_x));
      const Member& my = members_.at(nodes_.at(best_y));
      log_locked("repair-peer " + mx.broker->name() + "-" +
                 my.broker->name() + " score=" + std::to_string(best_score));
      wire_edge_locked(best_x, best_y);
      ++stats_.repeers;
      return;
    }
  }

  ++stats_.stranded;
  log_locked("stranded " + rn + "-" + dn + ": no usable repair candidate");
}

void RepairPolicy::wire_edge_locked(std::size_t a, std::size_t b) {
  const NodeId na = nodes_.at(a);
  const NodeId nb = nodes_.at(b);
  ++attempts_[norm_edge(a, b)];
  if (!backend_.linked(na, nb)) {
    backend_.link(na, nb, options_.link_params);
  }
  topology_.adopt_repair_edge(a, b);
  alive_.insert(norm_edge(a, b));
  Broker* ba = members_.at(na).broker;
  Broker* bb = members_.at(nb).broker;
  // Peer both ends from their own node contexts; only then let interest
  // resync fire (scheduled, never immediate — a subscribe landing before
  // the receiving side peered would be treated as client misbehaviour).
  backend_.post(na, [ba, nb] { ba->peer(nb); });
  backend_.post(nb, [bb, na] { bb->peer(na); });
  // Anti-entropy rounds on EVERY broker, not just the repair-edge
  // endpoints: interest re-propagation crosses the whole overlay, and an
  // intermediate broker only forwards a pattern on first receipt — on a
  // lossy overlay a single dropped onward announce would otherwise never
  // be retried. Each round pushes every broker's current tables one hop
  // further, so `rounds` retries cover the path.
  const int rounds = std::max(1, options_.resync_rounds);
  for (int round = 1; round <= rounds; ++round) {
    const Duration delay = round * options_.resync_spacing;
    for (const auto& [node, member] : members_) {
      Broker* broker = member.broker;
      backend_.schedule(node, delay, [broker] { broker->resync_interest(); });
    }
  }
}

}  // namespace et::pubsub
