// Broker-overlay construction helpers.
//
// The interest-propagation protocol requires an acyclic broker overlay
// (reverse-path forwarding has no duplicate suppression). `Topology` owns
// a set of brokers and wires them into chains, stars or balanced trees —
// the shapes the paper's benchmarks use (Figure 1: a chain of brokers;
// Figure 3: a star of brokers around the traced entity's broker).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/pubsub/broker.h"
#include "src/transport/network.h"

namespace et::pubsub {

/// Owns brokers and guarantees the overlay stays a tree.
class Topology {
 public:
  explicit Topology(transport::NetworkBackend& backend)
      : backend_(backend) {}

  /// Creates a broker named `name` (unconnected).
  Broker& add_broker(const std::string& name,
                     int misbehaviour_threshold = 5);

  /// Links two brokers and registers them as peers. Throws
  /// std::invalid_argument if the edge would create a cycle.
  void connect_brokers(Broker& a, Broker& b,
                       const transport::LinkParams& params);

  /// Builds a chain b0 - b1 - ... - b{n-1}; returns the brokers in order.
  std::vector<Broker*> make_chain(std::size_t n,
                                  const transport::LinkParams& params,
                                  const std::string& prefix = "broker");

  /// Builds a star: hub plus `leaves` brokers each linked to the hub.
  /// Returns {hub, leaf0, leaf1, ...}.
  std::vector<Broker*> make_star(std::size_t leaves,
                                 const transport::LinkParams& params,
                                 const std::string& prefix = "broker");

  [[nodiscard]] std::size_t size() const { return brokers_.size(); }
  [[nodiscard]] Broker& broker(std::size_t i) { return *brokers_.at(i); }

 private:
  [[nodiscard]] std::size_t index_of(const Broker& b) const;
  [[nodiscard]] std::size_t find_root(std::size_t i);

  transport::NetworkBackend& backend_;
  std::vector<std::unique_ptr<Broker>> brokers_;
  std::vector<std::size_t> union_find_;  // cycle detection
};

}  // namespace et::pubsub
