// Broker-overlay construction helpers.
//
// The interest-propagation protocol requires an acyclic broker overlay
// (reverse-path forwarding has no duplicate suppression). `Topology` owns
// a set of brokers and wires them into the shapes the paper's benchmarks
// use (Figure 1: a chain of brokers; Figure 3: a star of brokers around
// the traced entity's broker) plus the large-overlay shapes the chaos
// sweeps drive (DESIGN.md §12): rings, balanced k-ary trees,
// cluster-of-stars "racks" and degree-bounded random trees. Every
// generator keeps the peered overlay a spanning tree; each chaos shape
// additionally provisions one cold standby transport link (linked on the
// backend, never peered) that the overlay-repair protocol can activate
// when a spanning-tree edge dies — see standby_edges().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/pubsub/broker.h"
#include "src/transport/network.h"

namespace et::pubsub {

/// Per-broker configuration hook for make_chain/make_star: called with
/// each broker's generated name, returns the Options to construct it with
/// (the name is stamped on afterwards so overlay naming stays uniform).
/// This is how deployments attach per-broker state — e.g. the tracing
/// trace filter, whose install_trace_filter(Options&, ...) overload fills
/// in Options::message_filter and hands back a stats handle.
using BrokerOptionsFn = std::function<Broker::Options(const std::string&)>;

/// Owns brokers and guarantees the overlay stays a tree.
class Topology {
 public:
  explicit Topology(transport::NetworkBackend& backend)
      : backend_(backend) {}

  /// Creates a fully configured broker (unconnected). Designated
  /// initializers keep simple call sites terse:
  ///   topo.add_broker({.name = "b0"});
  Broker& add_broker(Broker::Options options);

  /// Links two brokers and registers them as peers. Throws
  /// std::invalid_argument if the edge would create a cycle.
  void connect_brokers(Broker& a, Broker& b,
                       const transport::LinkParams& params);

  /// Builds a chain b0 - b1 - ... - b{n-1}; returns the brokers in order.
  /// `options`, when given, configures each broker (see BrokerOptionsFn).
  std::vector<Broker*> make_chain(std::size_t n,
                                  const transport::LinkParams& params,
                                  const std::string& prefix = "broker",
                                  const BrokerOptionsFn& options = {});

  /// Builds a star: hub plus `leaves` brokers each linked to the hub.
  /// Returns {hub, leaf0, leaf1, ...}.
  std::vector<Broker*> make_star(std::size_t leaves,
                                 const transport::LinkParams& params,
                                 const std::string& prefix = "broker",
                                 const BrokerOptionsFn& options = {});

  /// Builds a physical ring of `n` brokers. The peered overlay must stay
  /// acyclic, so it is the ring's spanning chain b0 - ... - b{n-1}; the
  /// closing edge b{n-1} - b0 exists only as an unpeered standby
  /// transport link (chaos schedules flap/cut physical adjacency, and a
  /// future repair protocol could activate it). Returns brokers in ring
  /// order.
  std::vector<Broker*> make_ring(std::size_t n,
                                 const transport::LinkParams& params,
                                 const std::string& prefix = "broker",
                                 const BrokerOptionsFn& options = {});

  /// Builds a balanced `arity`-ary tree of `n` brokers in breadth-first
  /// order: out[i]'s parent is out[(i-1)/arity]. Diameter grows
  /// logarithmically in n — the low-diameter end of the sweep axis.
  std::vector<Broker*> make_tree(std::size_t n, std::size_t arity,
                                 const transport::LinkParams& params,
                                 const std::string& prefix = "broker",
                                 const BrokerOptionsFn& options = {});

  /// Builds a cluster-of-stars overlay: `cores` core brokers in a chain,
  /// each fronting a "rack" of `leaves_per_core` leaf brokers. Returns
  /// cores first (indices 0..cores-1), then leaves grouped by rack: leaf
  /// j of rack i is at index cores + i*leaves_per_core + j. Total size
  /// cores * (1 + leaves_per_core).
  std::vector<Broker*> make_clusters(std::size_t cores,
                                     std::size_t leaves_per_core,
                                     const transport::LinkParams& params,
                                     const std::string& prefix = "broker",
                                     const BrokerOptionsFn& options = {});

  /// Builds a degree-bounded random spanning tree — the acyclic skeleton
  /// of a random-regular overlay (a true random-regular graph is cyclic,
  /// which reverse-path forwarding cannot route). Each new broker
  /// attaches to a uniformly random existing broker whose degree is
  /// still below `max_degree` (>= 2). Deterministic in `seed`.
  std::vector<Broker*> make_random_tree(std::size_t n,
                                        std::size_t max_degree,
                                        std::uint64_t seed,
                                        const transport::LinkParams& params,
                                        const std::string& prefix = "broker",
                                        const BrokerOptionsFn& options = {});

  [[nodiscard]] std::size_t size() const { return brokers_.size(); }
  [[nodiscard]] Broker& broker(std::size_t i) { return *brokers_.at(i); }

  /// Peered overlay edges as (index, index) pairs, in creation order.
  /// Returned by value: the repair protocol adopts/retires edges at
  /// runtime, possibly from broker node threads.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> edges()
      const {
    std::lock_guard lock(edges_mu_);
    return edges_;
  }

  /// Cold standby transport links as (index, index) pairs, in creation
  /// order: physical edges that exist on the backend but are never peered.
  /// Every chaos generator records one — the ring's closing edge, the
  /// tree/random-tree front-to-back shortcut, the cluster chain's
  /// end-to-end bypass — so the overlay-repair protocol always has a
  /// pre-provisioned link it can activate when a spanning-tree edge dies.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  standby_edges() const {
    std::lock_guard lock(edges_mu_);
    return standby_edges_;
  }

  /// Adopts a repaired edge into edges(): promotes it out of
  /// standby_edges() when recorded there, otherwise appends. Deliberately
  /// bypasses the union-find cycle guard — that guard polices build-time
  /// wiring; a repair edge joins two components separated by a retired
  /// edge, and keeping the live overlay acyclic is the RepairPolicy's
  /// invariant, not this container's. Does NOT link or peer anything:
  /// callers wire the backend/brokers themselves. Thread-safe.
  void adopt_repair_edge(std::size_t a, std::size_t b);

  /// Drops a dead edge from edges() so ground-truth reachability stops
  /// counting it (no-op when absent, either orientation). Thread-safe.
  void retire_edge(std::size_t a, std::size_t b);

  /// Hop diameter of the peered overlay: the longest shortest path over
  /// any connected broker pair (0 for <= 1 broker; disconnected pairs are
  /// ignored, so a forest reports its widest tree).
  [[nodiscard]] std::size_t diameter() const;

  // --- chaos helpers (delegate to the backend's FaultInjector) ----------

  /// Partitions the overlay into isolated broker groups, e.g.
  /// `topo.partition({{b0, b1}, {b2}})`. Broker-to-broker packets that
  /// cross a boundary are silently dropped; unlisted nodes (clients,
  /// TDNs) keep their direct links to both sides — cut them off with the
  /// backend injector's isolate() (a single group severs listed against
  /// unlisted nodes).
  void partition(const std::vector<std::vector<Broker*>>& groups);

  /// Removes the partition (per-link faults and crashes persist).
  void heal();

  /// Isolates one broker entirely (frozen-process model: its timers and
  /// state survive and resume on restart()).
  void crash(Broker& b);
  void restart(Broker& b);

 private:
  [[nodiscard]] std::size_t index_of(const Broker& b) const;
  [[nodiscard]] std::size_t find_root(std::size_t i);
  /// Links i - j on the backend and records it as a standby edge.
  void add_standby(std::size_t i, std::size_t j,
                   const transport::LinkParams& params);
  [[nodiscard]] bool has_edge_locked(std::size_t a, std::size_t b) const;

  transport::NetworkBackend& backend_;
  std::vector<std::unique_ptr<Broker>> brokers_;
  std::vector<std::size_t> union_find_;  // cycle detection
  /// Guards edges_/standby_edges_: repair mutates them at runtime, and on
  /// RealTimeNetwork both repair (broker threads) and oracle ground-truth
  /// sampling (test thread) read them concurrently.
  mutable std::mutex edges_mu_;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;
  std::vector<std::pair<std::size_t, std::size_t>> standby_edges_;
};

}  // namespace et::pubsub
