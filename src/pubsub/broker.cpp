#include "src/pubsub/broker.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "src/common/logging.h"
#include "src/common/serialize.h"
#include "src/common/topic_path.h"

namespace et::pubsub {

using transport::NodeId;

namespace {

// True when `topic` is already the '/'-joined canonical form of `path` —
// the common case, which lets the broker forward the original wire bytes.
// Non-canonical spellings (stray or doubled slashes) need an owning
// rewrite. Equivalent to `path.canonical() == topic` without allocating.
bool topic_is_canonical(const TopicPath& path, std::string_view topic) {
  std::size_t want = path.empty() ? 0 : path.size() - 1;
  for (const auto& seg : path.segments()) want += seg.size();
  if (topic.size() != want) return false;
  std::size_t off = 0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) {
      if (topic[off] != '/') return false;
      ++off;
    }
    const std::string& seg = path[i];
    if (topic.compare(off, seg.size(), seg) != 0) return false;
    off += seg.size();
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Match worker pool
//
// Workers pull inbound publishes off a shared queue, run the (read-only)
// match stage against table snapshots, and post the send stage back into
// the broker's node context. The pool holds no broker state of its own.

class Broker::MatchPool {
 public:
  struct Job {
    Message m;
    NodeId from;
    TopicPath path;
    std::optional<ConstrainedTopic> ct;
  };

  MatchPool(Broker& broker, int threads) : broker_(broker) {
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { loop(); });
    }
  }

  ~MatchPool() {
    {
      std::lock_guard lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  void submit(Job job) {
    {
      std::lock_guard lock(mu_);
      queue_.push_back(std::move(job));
    }
    cv_.notify_one();
  }

  [[nodiscard]] int threads() const {
    return static_cast<int>(workers_.size());
  }

 private:
  void loop() {
    for (;;) {
      Job job;
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping; drop the backlog
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      MatchPlan plan = broker_.compute_match(job.path, job.ct);
      // The send stage mutates sessions/counters, so it must run in the
      // node context. std::function requires copyable captures; Message
      // and MatchPlan both are.
      broker_.backend_.post(
          broker_.node_,
          [b = &broker_, m = std::move(job.m), from = job.from,
           plan = std::move(plan)] { b->execute_send(m, from, plan); });
    }
  }

  Broker& broker_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// ---------------------------------------------------------------------------
// Broker

Broker::Broker(transport::NetworkBackend& backend, Options options)
    : backend_(backend),
      name_(std::move(options.name)),
      misbehaviour_threshold_(options.misbehaviour_threshold),
      summary_depth_(options.interest_summary_depth),
      filter_(std::move(options.message_filter)),
      misbehaviour_fsync_(options.misbehaviour_fsync),
      misbehaviour_dir_(std::move(options.misbehaviour_persist_dir)) {
  if (options.client_unreachable_handler) {
    unreachable_listeners_.push_back(
        std::move(options.client_unreachable_handler));
  }
  local_services_.store(std::make_shared<const ServiceList>(),
                        std::memory_order_release);
  node_ = backend_.add_node(
      name_, [this](NodeId from, BytesView payload) {
        on_packet(from, payload);
      });
  // Worker-pool matching requires thread-safe post(); on single-threaded
  // backends (VirtualTimeNetwork) clamp to the inline path so simulations
  // stay deterministic no matter what the caller asked for.
  if (options.match_threads > 0 && backend_.concurrent_dispatch()) {
    match_pool_ = std::make_unique<MatchPool>(*this, options.match_threads);
  }
  if (!misbehaviour_dir_.empty()) open_misbehaviour_store();
}

Broker::~Broker() = default;

int Broker::match_threads() const {
  return match_pool_ ? match_pool_->threads() : 0;
}

void Broker::peer(NodeId other) {
  if (!neighbours_.insert(other).second) return;
  for (const auto& listener : peer_listeners_) listener(other, true);
}

void Broker::unpeer(NodeId other) {
  if (neighbours_.erase(other) == 0) return;
  summaries_.erase(other);
  // Drop everything the dead peer had announced. Patterns left with no
  // remaining local or remote interest are retracted from the surviving
  // neighbours — same cascade as handle_unsubscribe, with no split
  // horizon since the originator is gone.
  for (const std::string& pattern : remote_subs_.remove_endpoint(other)) {
    const TopicPath compiled(pattern);
    if (!local_subs_.any_match(compiled) &&
        !remote_subs_.any_match(compiled)) {
      propagate_unsubscribe(compiled, pattern, transport::kInvalidNode);
    }
  }
  for (const auto& listener : peer_listeners_) listener(other, false);
}

void Broker::add_peer_listener(PeerListener listener) {
  if (listener) peer_listeners_.push_back(std::move(listener));
}

void Broker::set_link_handler(LinkFrameHandler handler) {
  link_handler_ = std::move(handler);
}

void Broker::subscribe_local(const std::string& pattern, LocalHandler handler,
                             bool local_only) {
  TopicPath compiled(pattern);
  const std::string norm = compiled.canonical();
  // Republish the service list RCU-style: node-context writers only, but
  // match stages on worker threads may be reading the old list right now.
  const auto cur = local_services_.load(std::memory_order_acquire);
  auto next = std::make_shared<ServiceList>(*cur);
  next->push_back({norm, compiled, std::move(handler)});
  local_services_.store(std::move(next), std::memory_order_release);
  // Register interest network-wide so remote publications reach us. The
  // broker itself is the subscriber; constrained Subscribe-Only/Broker
  // topics permit exactly this. Suppressed subscriptions stay local.
  if (local_subs_.add(compiled, node_) && !local_only) {
    propagate_subscribe(compiled, norm, transport::kInvalidNode);
  }
}

void Broker::register_interest(const Interest& interest, LocalHandler handler,
                               bool local_only) {
  std::vector<std::string> segs = TopicPath(interest.prefix).segments();
  if (interest.depth > 0 && segs.size() > interest.depth) {
    segs.resize(interest.depth);
  }
  if (segs.empty() || !is_wildcard_segment(segs.back())) {
    segs.emplace_back(kMultiLevelWildcard);
  }
  subscribe_local(join_topic(segs), std::move(handler), local_only);
}

void Broker::resync_interest() {
  // Back-fill every neighbour with the union of local client interest,
  // neighbour-announced interest, and every pattern recorded on any
  // edge: a late-joined peer has no table yet, a healed peer may have
  // lost our announcements, and a broker whose only edge died carries
  // empty summary tables while its clients' subscriptions still need
  // re-announcing over a repair edge. Adds are refcount-idempotent here
  // and table-idempotent on the receiving side.
  std::set<std::string> all;
  for (const auto& [n, table] : summaries_) {
    for (auto& p : table.recorded_patterns()) all.insert(std::move(p));
  }
  const auto local = local_subs_.snapshot();
  const auto remote = remote_subs_.snapshot();
  for (const auto& p : local->patterns()) all.insert(p);
  for (const auto& p : remote->patterns()) all.insert(p);
  for (const NodeId n : neighbours_) {
    InterestSummaryTable& table = summary_for(n);
    for (const auto& p : all) {
      const TopicPath compiled(p);
      // Split horizon: a pattern whose only interest is the target
      // neighbour's own announcement is not echoed back to it.
      if (!local->any_match(compiled)) {
        const std::set<NodeId> holders = remote->match(compiled);
        if (holders.size() == 1 && *holders.begin() == n) continue;
      }
      (void)table.add(compiled);
    }
    for (const auto& summary : table.announced()) {
      send_frame(n, make_subscribe(summary, 0));
    }
  }
}

std::size_t Broker::summarized_edges() const {
  std::size_t total = 0;
  for (const auto& [n, table] : summaries_) total += table.edge_count();
  return total;
}

InterestSummaryTable& Broker::summary_for(NodeId neighbour) {
  return summaries_.try_emplace(neighbour, summary_depth_).first->second;
}

void Broker::propagate_subscribe(const TopicPath& compiled,
                                 const std::string& pattern, NodeId except) {
  for (const NodeId n : neighbours_) {
    if (n == except) continue;
    const auto announce = summary_for(n).add(compiled);
    if (summary_depth_ == 0) {
      // Legacy: re-announce verbatim (the table recorded the pattern for
      // resync, but never gates what is sent).
      send_frame(n, make_subscribe(pattern, 0));
    } else if (announce) {
      send_frame(n, make_subscribe(*announce, 0));
    }
  }
}

void Broker::propagate_unsubscribe(const TopicPath& compiled,
                                   const std::string& pattern,
                                   NodeId except) {
  for (const NodeId n : neighbours_) {
    if (n == except) continue;
    const auto retract = summary_for(n).remove(compiled);
    if (summary_depth_ == 0) {
      send_frame(n, make_unsubscribe(pattern));
    } else if (retract) {
      send_frame(n, make_unsubscribe(*retract));
    }
  }
}

void Broker::publish_from_broker(Message m) {
  if (m.publisher.empty()) m.publisher = name_;
  if (m.sequence == 0) m.sequence = ++sequence_;
  if (m.timestamp == 0) m.timestamp = backend_.now();
  counters_.published.inc();
  route(std::move(m), transport::kInvalidNode);
}

void Broker::add_client_unreachable_listener(
    ClientUnreachableHandler handler) {
  if (handler) unreachable_listeners_.push_back(std::move(handler));
}

void Broker::release_deferred(Message m, NodeId from) {
  counters_.published.inc();
  route(std::move(m), from);
}

void Broker::reject_deferred(NodeId from, const Status& why) {
  counters_.discarded.inc();
  report_misbehaviour(from, "filter rejected message: " + why.message());
}

std::string Broker::client_identity(NodeId id) const {
  const auto it = clients_.find(id);
  return it == clients_.end() ? std::string() : it->second;
}

bool Broker::is_blacklisted(NodeId endpoint) const {
  return blacklist_.contains(endpoint);
}

void Broker::report_misbehaviour(NodeId endpoint, const std::string& why) {
  const int strikes = ++strikes_[endpoint];
  ET_LOG(kInfo) << name_ << ": misbehaviour from "
                << backend_.node_name(endpoint) << " (" << why << "), strike "
                << strikes << "/" << misbehaviour_threshold_;
  const bool blacklisting =
      strikes >= misbehaviour_threshold_ && !blacklist_.contains(endpoint);
  // Write-ahead: the strike is on disk before its consequences apply, so
  // a crash right after the disconnect cannot forget why it happened.
  persist_strike(endpoint, strikes, blacklisting);
  if (blacklisting) {
    // §5.2: terminate communications with the offender.
    blacklist_.insert(endpoint);
    counters_.disconnects.inc();
    clients_.erase(endpoint);
    local_subs_.remove_endpoint(endpoint);
    remote_subs_.remove_endpoint(endpoint);
    backend_.unlink(node_, endpoint);
    ET_LOG(kWarn) << name_ << ": terminated communications with "
                  << backend_.node_name(endpoint);
  }
}

void Broker::open_misbehaviour_store() {
  persist::DurableStore::Options so;
  so.dir = misbehaviour_dir_;
  so.fsync = misbehaviour_fsync_;
  const Status s = misbehaviour_store_.open(
      so, [this](BytesView blob) { apply_misbehaviour_snapshot(blob); },
      [this](BytesView rec) { apply_misbehaviour_record(rec); });
  if (!s.is_ok()) {
    ET_LOG(kWarn) << name_
                  << ": misbehaviour store unavailable: " << s.to_string();
  }
}

void Broker::persist_strike(NodeId endpoint, int strikes, bool blacklisted) {
  if (!misbehaviour_durable()) return;
  Writer w;
  w.u32(endpoint);
  w.str(client_identity(endpoint));  // audit trail; "" for peer brokers
  w.u32(static_cast<std::uint32_t>(strikes));
  w.boolean(blacklisted || blacklist_.contains(endpoint));
  (void)misbehaviour_store_.append(std::move(w).take());
}

void Broker::apply_misbehaviour_record(BytesView rec) {
  try {
    Reader r(rec);
    const NodeId endpoint = r.u32();
    (void)r.str();  // entity id: audit metadata only
    const int strikes = static_cast<int>(r.u32());
    const bool blacklisted = r.boolean();
    r.expect_done();
    // Last-writer-wins per endpoint: each record carries the running
    // total, so replay over a snapshot is idempotent.
    strikes_[endpoint] = std::max(strikes_[endpoint], strikes);
    if (blacklisted) blacklist_.insert(endpoint);
  } catch (const SerializeError& e) {
    ET_LOG(kWarn) << name_
                  << ": undecodable misbehaviour record dropped: "
                  << e.what();
  }
}

void Broker::apply_misbehaviour_snapshot(BytesView blob) {
  try {
    Reader r(blob);
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const NodeId endpoint = r.u32();
      const int strikes = static_cast<int>(r.u32());
      const bool blacklisted = r.boolean();
      strikes_[endpoint] = std::max(strikes_[endpoint], strikes);
      if (blacklisted) blacklist_.insert(endpoint);
    }
    r.expect_done();
  } catch (const SerializeError& e) {
    ET_LOG(kWarn) << name_
                  << ": undecodable misbehaviour snapshot ignored: "
                  << e.what();
  }
}

Bytes Broker::misbehaviour_blob() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(strikes_.size()));
  for (const auto& [endpoint, strikes] : strikes_) {
    w.u32(endpoint);
    w.u32(static_cast<std::uint32_t>(strikes));
    w.boolean(blacklist_.contains(endpoint));
  }
  return std::move(w).take();
}

Status Broker::checkpoint_misbehaviour() {
  if (!misbehaviour_durable()) {
    return internal_error("checkpoint on non-durable broker");
  }
  return misbehaviour_store_.checkpoint(misbehaviour_blob());
}

void Broker::restart_misbehaviour_state(bool with_state) {
  strikes_.clear();
  blacklist_.clear();
  if (!misbehaviour_durable()) return;
  if (!with_state) {
    (void)misbehaviour_store_.reset();
    return;
  }
  open_misbehaviour_store();
}

void Broker::send_frame(NodeId to, const Frame& f) {
  note_send_status(to, backend_.send(node_, to, f.serialize()));
}

void Broker::send_wire(NodeId to, transport::SharedPayload wire) {
  note_send_status(to, backend_.send(node_, to, std::move(wire)));
}

void Broker::note_send_status(NodeId to, const Status& s) {
  if (s.is_ok()) return;
  ET_LOG(kDebug) << name_ << ": send to " << backend_.node_name(to)
                 << " failed: " << s.to_string();
  // A vanished link to a directly connected client means it disconnected:
  // drop its state and notify the tracing layer exactly once.
  if (s.code() == Code::kUnavailable) {
    const auto it = clients_.find(to);
    if (it != clients_.end()) {
      const std::string entity_id = it->second;
      clients_.erase(it);
      local_subs_.remove_endpoint(to);
      for (const auto& listener : unreachable_listeners_) {
        listener(entity_id);
      }
    }
  }
}

void Broker::on_packet(NodeId from, BytesView payload) {
  if (blacklist_.contains(from)) return;
  // Borrowed decode: every frame field is a view into `payload`, valid for
  // the duration of this call. Paths that outlive it materialize.
  FrameView f;
  try {
    f = FrameView::parse(payload);
  } catch (const SerializeError& e) {
    report_misbehaviour(from, std::string("malformed frame: ") + e.what());
    return;
  }
  switch (f.type) {
    case FrameType::kConnect:
      handle_connect(from, f);
      break;
    case FrameType::kSubscribe:
      handle_subscribe(from, f);
      break;
    case FrameType::kUnsubscribe:
      handle_unsubscribe(from, f);
      break;
    case FrameType::kPublish:
      handle_publish(from, f);
      break;
    case FrameType::kKeepalive:
    case FrameType::kPeerExchange:
      // Link-maintenance traffic: owned by the overlay-repair service,
      // never routed. Ignored when no service is installed.
      if (link_handler_) link_handler_(from, f);
      break;
    default:
      break;  // acks/errors are for clients; ignore here
  }
}

void Broker::handle_connect(NodeId from, const FrameView& f) {
  if (f.text.empty()) {
    send_frame(from, make_error(1, "connect requires an entity id",
                                f.request_id));
    report_misbehaviour(from, "connect without entity id");
    return;
  }
  clients_[from] = std::string(f.text);
  Frame ack;
  ack.type = FrameType::kConnectAck;
  ack.text = name_;
  ack.request_id = f.request_id;
  send_frame(from, ack);
}

void Broker::handle_subscribe(NodeId from, const FrameView& f) {
  // Compile the pattern once; every check below reuses the split form.
  const TopicPath compiled(f.text);
  const std::string pattern = compiled.canonical();
  if (pattern.empty()) {
    send_frame(from, make_error(1, "empty pattern", f.request_id));
    return;
  }

  const bool from_broker = is_neighbour(from);
  if (from_broker) {
    // Neighbour interest: record and keep propagating (split horizon).
    if (remote_subs_.add(compiled, from) && !local_subs_.any_match(compiled)) {
      propagate_subscribe(compiled, pattern, from);
    }
    return;
  }

  // Client subscribe: enforce the constrained-topic grammar at the edge.
  const std::string actor = client_identity(from);
  const Status allowed = check_constrained_action(
      pattern, TopicAction::kSubscribe, /*actor_is_broker=*/false, actor);
  if (!allowed.is_ok()) {
    counters_.discarded.inc();
    send_frame(from, make_error(2, allowed.to_string(), f.request_id));
    report_misbehaviour(from, "unauthorized subscribe to " + pattern);
    return;
  }

  bool propagate = local_subs_.add(compiled, from);
  // Suppress distribution: the constrainer's subscriptions stay local.
  if (const auto ct = ConstrainedTopic::parse(pattern);
      ct && ct->distribution == Distribution::kSuppress &&
      ct->allowed == AllowedActions::kSubscribeOnly &&
      !ct->constrainer_is_broker() && ct->constrainer == actor) {
    propagate = false;
  }
  if (propagate) {
    propagate_subscribe(compiled, pattern, transport::kInvalidNode);
  }
  Frame ack;
  ack.type = FrameType::kSubscribeAck;
  ack.text = pattern;
  ack.request_id = f.request_id;
  send_frame(from, ack);
}

void Broker::handle_unsubscribe(NodeId from, const FrameView& f) {
  const TopicPath compiled(f.text);
  const std::string pattern = compiled.canonical();
  const bool emptied = is_neighbour(from)
                           ? remote_subs_.remove(compiled, from)
                           : local_subs_.remove(compiled, from);
  if (emptied && !local_subs_.any_match(compiled) &&
      !remote_subs_.any_match(compiled)) {
    propagate_unsubscribe(compiled, pattern, from);
  }
}

void Broker::handle_publish(NodeId from, const FrameView& f) {
  if (!f.message) {
    report_misbehaviour(from, "publish frame without message");
    return;
  }
  const MessageView& mv = *f.message;
  // Split and grammar-parse the topic exactly once; every downstream step
  // (edge enforcement, suppress check, routing) reuses the parsed forms.
  TopicPath path(mv.topic);
  std::optional<ConstrainedTopic> ct = ConstrainedTopic::parse(path);

  const bool from_broker = is_neighbour(from);
  if (!from_broker) {
    // Edge enforcement: may this client publish here?
    const std::string actor = client_identity(from);
    if (actor.empty()) {
      counters_.discarded.inc();
      report_misbehaviour(from, "publish before connect");
      return;
    }
    const Status allowed = check_constrained_action(
        ct, TopicAction::kPublish, /*actor_is_broker=*/false, actor);
    if (!allowed.is_ok()) {
      counters_.discarded.inc();
      send_frame(from, make_error(2, allowed.to_string(), 0));
      report_misbehaviour(from,
                          "unauthorized publish to " + std::string(mv.topic));
      return;
    }
  }

  // Tracing-layer filter (token verification). Applies to all inbound
  // messages; broker-originated traces go through publish_from_broker and
  // are the local broker's own responsibility. A deferring filter
  // materializes the message itself and resolves it later via
  // release/reject_deferred.
  if (filter_) {
    const FilterVerdict verdict = filter_(*this, mv, from);
    if (verdict.rejected()) {
      counters_.discarded.inc();
      report_misbehaviour(from,
                          "filter rejected message: " + verdict.status.message());
      return;
    }
    if (verdict.deferred()) return;  // the filter parked an owning copy
  }

  counters_.published.inc();

  // Non-canonical topic spellings must be rewritten so subscribers and
  // downstream hops see the canonical form — the wire bytes can't be
  // forwarded verbatim. Rare; take the owning slow path.
  if (!topic_is_canonical(path, mv.topic)) {
    counters_.materialized.inc();
    Message m = mv.materialize();
    m.topic = path.canonical();
    route(std::move(m), from, std::move(path), std::move(ct));
    return;
  }
  route(f, from, std::move(path), std::move(ct));
}

void Broker::route(Message m, NodeId arrived_from) {
  TopicPath path(m.topic);
  std::optional<ConstrainedTopic> ct = ConstrainedTopic::parse(path);
  route(std::move(m), arrived_from, std::move(path), std::move(ct));
}

void Broker::route(Message m, NodeId arrived_from, TopicPath path,
                   std::optional<ConstrainedTopic> ct) {
  if (match_pool_) {
    match_pool_->submit({std::move(m), arrived_from, std::move(path),
                         std::move(ct)});
    return;
  }
  const MatchPlan plan = compute_match(path, ct);
  execute_send(m, arrived_from, plan);
}

void Broker::route(const FrameView& f, NodeId arrived_from, TopicPath path,
                   std::optional<ConstrainedTopic> ct) {
  if (match_pool_) {
    // Worker-pool jobs outlive this packet handler call — and with it the
    // wire buffer the view borrows from — so materialize now. TopicPath
    // and ConstrainedTopic own their strings and cross safely.
    counters_.materialized.inc();
    match_pool_->submit({f.message->materialize(), arrived_from,
                         std::move(path), std::move(ct)});
    return;
  }
  const MatchPlan plan = compute_match(path, ct);
  execute_send(f, arrived_from, plan);
}

Broker::MatchPlan Broker::compute_match(
    const TopicPath& path, const std::optional<ConstrainedTopic>& ct) const {
  MatchPlan plan;
  plan.services = local_services_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < plan.services->size(); ++i) {
    if (topic_matches((*plan.services)[i].compiled, path)) {
      plan.matched_services.push_back(i);
    }
  }
  plan.local_targets = local_subs_.match(path);
  // Suppress distribution: a constrainer's Publish-Only publications stay
  // on this broker — don't even look at neighbour interest.
  const bool suppress = ct && ct->distribution == Distribution::kSuppress &&
                        ct->allowed == AllowedActions::kPublishOnly;
  if (!suppress) plan.remote_targets = remote_subs_.match(path);
  return plan;
}

void Broker::execute_send(const Message& m, NodeId arrived_from,
                          const MatchPlan& plan) {
  // Local services (tracing broker, etc.). Handlers may register further
  // services while running (a trace registration subscribes the session
  // topics); the plan's snapshot pins the list iterated here, so newly
  // appended services never see the current message.
  for (const std::size_t i : plan.matched_services) {
    (*plan.services)[i].handler(m);
  }

  // Serialize the publish frame once per fan-out; every destination
  // shares the same buffer.
  transport::SharedPayload wire;
  const auto encoded = [&]() -> const transport::SharedPayload& {
    if (!wire) wire = transport::share_payload(encode_publish_frame(m));
    return wire;
  };

  // Local clients.
  for (const NodeId client : plan.local_targets) {
    if (client == node_ || client == arrived_from) continue;
    counters_.delivered_local.inc();
    send_wire(client, encoded());
  }

  // Neighbour brokers with matching interest (split horizon). Empty when
  // the match stage determined suppress-distribution applies.
  for (const NodeId n : plan.remote_targets) {
    if (n == arrived_from) continue;
    counters_.forwarded.inc();
    send_wire(n, encoded());
  }
}

void Broker::execute_send(const FrameView& f, NodeId arrived_from,
                          const MatchPlan& plan) {
  // Local services take an owning Message; pay for the copy only when one
  // actually matched.
  if (!plan.matched_services.empty()) {
    counters_.materialized.inc();
    const Message m = f.message->materialize();
    for (const std::size_t i : plan.matched_services) {
      (*plan.services)[i].handler(m);
    }
  }

  // Pure forwarding re-sends the original wire bytes: one buffer copy out
  // of the receive view, shared by every destination — zero owning
  // Message copies and zero re-serializations.
  transport::SharedPayload wire;
  const auto shared_wire = [&]() -> const transport::SharedPayload& {
    if (!wire) {
      wire = std::make_shared<const Bytes>(f.wire.begin(), f.wire.end());
    }
    return wire;
  };

  for (const NodeId client : plan.local_targets) {
    if (client == node_ || client == arrived_from) continue;
    counters_.delivered_local.inc();
    counters_.view_forwards.inc();
    send_wire(client, shared_wire());
  }
  for (const NodeId n : plan.remote_targets) {
    if (n == arrived_from) continue;
    counters_.forwarded.inc();
    counters_.view_forwards.inc();
    send_wire(n, shared_wire());
  }
}

}  // namespace et::pubsub
