#include "src/pubsub/broker.h"

#include "src/common/logging.h"
#include "src/common/topic_path.h"

namespace et::pubsub {

using transport::NodeId;

Broker::Broker(transport::NetworkBackend& backend, std::string name,
               int misbehaviour_threshold)
    : backend_(backend),
      name_(std::move(name)),
      misbehaviour_threshold_(misbehaviour_threshold) {
  node_ = backend_.add_node(
      name_, [this](NodeId from, Bytes payload) {
        on_packet(from, std::move(payload));
      });
}

void Broker::peer(NodeId other) { neighbours_.insert(other); }

void Broker::subscribe_local(const std::string& pattern, LocalHandler handler,
                             bool local_only) {
  TopicPath compiled(pattern);
  const std::string norm = compiled.canonical();
  local_services_.push_back({norm, std::move(compiled), std::move(handler)});
  // Register interest network-wide so remote publications reach us. The
  // broker itself is the subscriber; constrained Subscribe-Only/Broker
  // topics permit exactly this. Suppressed subscriptions stay local.
  if (local_subs_.add(norm, node_) && !local_only) {
    for (const NodeId n : neighbours_) {
      send_frame(n, make_subscribe(norm, 0));
    }
  }
}

void Broker::publish_from_broker(Message m) {
  if (m.publisher.empty()) m.publisher = name_;
  if (m.sequence == 0) m.sequence = ++sequence_;
  if (m.timestamp == 0) m.timestamp = backend_.now();
  ++stats_.published;
  route(m, transport::kInvalidNode);
}

void Broker::set_message_filter(MessageFilter filter) {
  filter_ = std::move(filter);
}

void Broker::set_client_unreachable_handler(
    ClientUnreachableHandler handler) {
  unreachable_handler_ = std::move(handler);
}

std::string Broker::client_identity(NodeId id) const {
  const auto it = clients_.find(id);
  return it == clients_.end() ? std::string() : it->second;
}

bool Broker::is_blacklisted(NodeId endpoint) const {
  return blacklist_.contains(endpoint);
}

void Broker::report_misbehaviour(NodeId endpoint, const std::string& why) {
  const int strikes = ++strikes_[endpoint];
  ET_LOG(kInfo) << name_ << ": misbehaviour from "
                << backend_.node_name(endpoint) << " (" << why << "), strike "
                << strikes << "/" << misbehaviour_threshold_;
  if (strikes >= misbehaviour_threshold_ && !blacklist_.contains(endpoint)) {
    // §5.2: terminate communications with the offender.
    blacklist_.insert(endpoint);
    ++stats_.disconnects;
    clients_.erase(endpoint);
    local_subs_.remove_endpoint(endpoint);
    remote_subs_.remove_endpoint(endpoint);
    backend_.unlink(node_, endpoint);
    ET_LOG(kWarn) << name_ << ": terminated communications with "
                  << backend_.node_name(endpoint);
  }
}

void Broker::send_frame(NodeId to, const Frame& f) {
  const Status s = backend_.send(node_, to, f.serialize());
  if (s.is_ok()) return;
  ET_LOG(kDebug) << name_ << ": send to " << backend_.node_name(to)
                 << " failed: " << s.to_string();
  // A vanished link to a directly connected client means it disconnected:
  // drop its state and notify the tracing layer exactly once.
  if (s.code() == Code::kUnavailable) {
    const auto it = clients_.find(to);
    if (it != clients_.end()) {
      const std::string entity_id = it->second;
      clients_.erase(it);
      local_subs_.remove_endpoint(to);
      if (unreachable_handler_) unreachable_handler_(entity_id);
    }
  }
}

void Broker::on_packet(NodeId from, Bytes payload) {
  if (blacklist_.contains(from)) return;
  Frame f;
  try {
    f = Frame::deserialize(payload);
  } catch (const SerializeError& e) {
    report_misbehaviour(from, std::string("malformed frame: ") + e.what());
    return;
  }
  switch (f.type) {
    case FrameType::kConnect:
      handle_connect(from, f);
      break;
    case FrameType::kSubscribe:
      handle_subscribe(from, f);
      break;
    case FrameType::kUnsubscribe:
      handle_unsubscribe(from, f);
      break;
    case FrameType::kPublish:
      handle_publish(from, std::move(f));
      break;
    default:
      break;  // acks/errors are for clients; ignore here
  }
}

void Broker::handle_connect(NodeId from, const Frame& f) {
  if (f.text.empty()) {
    send_frame(from, make_error(1, "connect requires an entity id",
                                f.request_id));
    report_misbehaviour(from, "connect without entity id");
    return;
  }
  clients_[from] = f.text;
  Frame ack;
  ack.type = FrameType::kConnectAck;
  ack.text = name_;
  ack.request_id = f.request_id;
  send_frame(from, ack);
}

void Broker::handle_subscribe(NodeId from, const Frame& f) {
  const std::string pattern = normalize_topic(f.text);
  if (pattern.empty()) {
    send_frame(from, make_error(1, "empty pattern", f.request_id));
    return;
  }

  const bool from_broker = is_neighbour(from);
  if (from_broker) {
    // Neighbour interest: record and keep propagating (split horizon).
    if (remote_subs_.add(pattern, from) && !local_subs_.any_match(pattern)) {
      for (const NodeId n : neighbours_) {
        if (n != from) send_frame(n, make_subscribe(pattern, 0));
      }
    }
    return;
  }

  // Client subscribe: enforce the constrained-topic grammar at the edge.
  const std::string actor = client_identity(from);
  const Status allowed = check_constrained_action(
      pattern, TopicAction::kSubscribe, /*actor_is_broker=*/false, actor);
  if (!allowed.is_ok()) {
    ++stats_.discarded;
    send_frame(from, make_error(2, allowed.to_string(), f.request_id));
    report_misbehaviour(from, "unauthorized subscribe to " + pattern);
    return;
  }

  bool propagate = local_subs_.add(pattern, from);
  // Suppress distribution: the constrainer's subscriptions stay local.
  if (const auto ct = ConstrainedTopic::parse(pattern);
      ct && ct->distribution == Distribution::kSuppress &&
      ct->allowed == AllowedActions::kSubscribeOnly &&
      !ct->constrainer_is_broker() && ct->constrainer == actor) {
    propagate = false;
  }
  if (propagate) {
    for (const NodeId n : neighbours_) {
      send_frame(n, make_subscribe(pattern, 0));
    }
  }
  Frame ack;
  ack.type = FrameType::kSubscribeAck;
  ack.text = pattern;
  ack.request_id = f.request_id;
  send_frame(from, ack);
}

void Broker::handle_unsubscribe(NodeId from, const Frame& f) {
  const std::string pattern = normalize_topic(f.text);
  const bool emptied = is_neighbour(from)
                           ? remote_subs_.remove(pattern, from)
                           : local_subs_.remove(pattern, from);
  if (emptied && !local_subs_.any_match(pattern) &&
      !remote_subs_.any_match(pattern)) {
    for (const NodeId n : neighbours_) {
      if (n != from) send_frame(n, make_unsubscribe(pattern));
    }
  }
}

void Broker::handle_publish(NodeId from, Frame f) {
  if (!f.message) {
    report_misbehaviour(from, "publish frame without message");
    return;
  }
  Message& m = *f.message;
  // Split and grammar-parse the topic exactly once; every downstream step
  // (edge enforcement, suppress check, routing) reuses the parsed forms.
  const TopicPath path(m.topic);
  m.topic = path.canonical();
  const std::optional<ConstrainedTopic> ct = ConstrainedTopic::parse(path);

  const bool from_broker = is_neighbour(from);
  if (!from_broker) {
    // Edge enforcement: may this client publish here?
    const std::string actor = client_identity(from);
    if (actor.empty()) {
      ++stats_.discarded;
      report_misbehaviour(from, "publish before connect");
      return;
    }
    const Status allowed = check_constrained_action(
        ct, TopicAction::kPublish, /*actor_is_broker=*/false, actor);
    if (!allowed.is_ok()) {
      ++stats_.discarded;
      send_frame(from, make_error(2, allowed.to_string(), 0));
      report_misbehaviour(from, "unauthorized publish to " + m.topic);
      return;
    }
  }

  // Tracing-layer filter (token verification). Applies to all inbound
  // messages; broker-originated traces go through publish_from_broker and
  // are the local broker's own responsibility.
  if (filter_) {
    const Status ok = filter_(m, from);
    if (!ok.is_ok()) {
      ++stats_.discarded;
      report_misbehaviour(from, "filter rejected message: " + ok.message());
      return;
    }
  }

  ++stats_.published;
  route(m, from, path, ct);
}

void Broker::route(const Message& m, NodeId arrived_from) {
  const TopicPath path(m.topic);
  route(m, arrived_from, path, ConstrainedTopic::parse(path));
}

void Broker::route(const Message& m, NodeId arrived_from,
                   const TopicPath& path,
                   const std::optional<ConstrainedTopic>& ct) {
  // Local services (tracing broker, etc.). Handlers may register further
  // local services while running (a trace registration subscribes the
  // session topics), so iterate by index and copy the handler: the vector
  // can reallocate mid-loop. Services appended during routing do not see
  // the current message.
  const std::size_t service_count = local_services_.size();
  for (std::size_t i = 0; i < service_count; ++i) {
    if (topic_matches(local_services_[i].compiled, path)) {
      LocalHandler handler = local_services_[i].handler;
      handler(m);
    }
  }

  // Local clients.
  for (const NodeId client : local_subs_.match(path)) {
    if (client == node_ || client == arrived_from) continue;
    ++stats_.delivered_local;
    send_frame(client, make_publish(m));
  }

  // Suppress distribution: a constrainer's Publish-Only publications stay
  // on this broker.
  if (ct && ct->distribution == Distribution::kSuppress &&
      ct->allowed == AllowedActions::kPublishOnly) {
    return;
  }

  // Neighbour brokers with matching interest (split horizon).
  for (const NodeId n : remote_subs_.match(path)) {
    if (n == arrived_from) continue;
    ++stats_.forwarded;
    send_frame(n, make_publish(m));
  }
}

}  // namespace et::pubsub
