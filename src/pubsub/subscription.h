// Subscription bookkeeping for one broker.
//
// A broker tracks two kinds of interest:
//   * local consumers — directly connected clients (and broker-local
//     services such as the tracing service) keyed by endpoint;
//   * remote interest — neighbouring brokers that propagated a pattern,
//     used by reverse-path forwarding over the (acyclic) broker overlay.
//
// Patterns are hierarchical topics with optional wildcards (see
// common/topic_path.h). Each pattern is split into segments once, at
// registration; matching walks precompiled patterns against a split-once
// TopicPath of the inbound topic.
//
// Scaling design (DESIGN.md §9): the table is sharded by the pattern's
// top-level segment and read through RCU-style snapshots.
//   * Readers — match/any_match/endpoint_matches, the per-message hot
//     path — load a std::shared_ptr to an immutable Snapshot with one
//     atomic operation and never take the write mutex. A topic can only
//     be matched by patterns in the shard of its first segment plus the
//     wildcard bucket (patterns starting with '*' or '#'), so a match
//     scans two buckets, not the whole table.
//   * Writers — subscribe/unsubscribe/disconnect, rare — serialize on a
//     mutex, copy only the affected shard(s), and publish a new snapshot.
//     Shards are shared between snapshots via shared_ptr, so a write
//     copies one shard, not the table.
// Readers therefore observe a coherent table as of some recent write;
// brokers running the match stage on worker threads (Broker::Options::
// match_threads) rely on exactly this. Results are deterministic
// (sorted) regardless of shard hashing, keeping VirtualTimeNetwork runs
// bit-for-bit reproducible.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/common/atomic_shared_ptr.h"
#include "src/common/topic_path.h"
#include "src/transport/network.h"

namespace et::pubsub {

/// Interest registry mapping topic patterns to endpoints.
class SubscriptionTable {
 public:
  /// Shards 0..kShardCount-1 hold patterns keyed by their first segment;
  /// shard kShardCount is the wildcard bucket consulted on every match.
  static constexpr std::size_t kShardCount = 8;

  /// Immutable view of the whole table. All read queries live here; the
  /// table's own query methods are shorthands that grab the current
  /// snapshot first. Safe to use from any thread and stays valid (and
  /// unchanged) while held, even across concurrent writes.
  class Snapshot {
   public:
    /// All endpoints whose patterns match `topic` (deduplicated, sorted).
    [[nodiscard]] std::set<transport::NodeId> match(
        const TopicPath& topic) const;

    /// True when at least one pattern matches `topic`.
    [[nodiscard]] bool any_match(const TopicPath& topic) const;

    /// True when `endpoint` holds a subscription matching `topic`.
    [[nodiscard]] bool endpoint_matches(transport::NodeId endpoint,
                                        const TopicPath& topic) const;

    /// All patterns currently registered, sorted (for interest
    /// propagation to a newly joined neighbour).
    [[nodiscard]] std::vector<std::string> patterns() const;

    [[nodiscard]] std::size_t pattern_count() const { return count_; }

    struct Entry {
      std::string pattern;  // canonical form (sort key within a shard)
      TopicPath compiled;   // pattern split once at registration
      std::set<transport::NodeId> subs;
    };
    /// One shard, split by matching strategy. A pattern without wildcard
    /// segments can only match the one topic whose canonical form equals
    /// it, so exact patterns resolve by binary search on the topic
    /// string; only wildcard patterns are scanned. Trace workloads
    /// (UUID-specific publication topics, the paper's hot path) are
    /// almost entirely exact, so a match is O(log n) in the shard plus
    /// the handful of wildcard entries. Both vectors sorted by pattern.
    struct Shard {
      std::vector<Entry> exact;
      std::vector<Entry> wild;
    };

   private:
    friend class SubscriptionTable;

    /// The shards that can contain a pattern matching `topic`: the one
    /// hashed from its first segment, plus the wildcard bucket.
    [[nodiscard]] std::array<const Shard*, 2> candidate_shards(
        const TopicPath& topic) const;

    std::array<std::shared_ptr<const Shard>, kShardCount + 1> shards_;
    std::size_t count_ = 0;  // total registered patterns
  };

  SubscriptionTable();

  /// Adds interest; returns true when this is the pattern's first
  /// subscriber (the caller should then propagate interest upstream).
  bool add(const TopicPath& pattern, transport::NodeId endpoint);
  bool add(const std::string& pattern, transport::NodeId endpoint) {
    return add(TopicPath(pattern), endpoint);
  }

  /// Removes one endpoint's interest; returns true when the pattern has
  /// no subscribers left (caller should propagate the unsubscribe).
  bool remove(const TopicPath& pattern, transport::NodeId endpoint);
  bool remove(const std::string& pattern, transport::NodeId endpoint) {
    return remove(TopicPath(pattern), endpoint);
  }

  /// Drops every subscription held by `endpoint` (client disconnect).
  /// Returns the patterns that became empty, sorted.
  std::vector<std::string> remove_endpoint(transport::NodeId endpoint);

  /// Current snapshot; one atomic shared_ptr load, no lock. Hot paths
  /// that issue several queries against one message should take a single
  /// snapshot and query it.
  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const {
    return snap_.load(std::memory_order_acquire);
  }

  // Single-query shorthands over the current snapshot. Callers must pass
  // a compiled TopicPath — there are deliberately no string overloads, so
  // no call site can re-split a topic per query.
  [[nodiscard]] std::set<transport::NodeId> match(const TopicPath& t) const {
    return snapshot()->match(t);
  }
  [[nodiscard]] bool any_match(const TopicPath& t) const {
    return snapshot()->any_match(t);
  }
  [[nodiscard]] bool endpoint_matches(transport::NodeId endpoint,
                                      const TopicPath& t) const {
    return snapshot()->endpoint_matches(endpoint, t);
  }
  [[nodiscard]] std::vector<std::string> patterns() const {
    return snapshot()->patterns();
  }
  [[nodiscard]] std::size_t pattern_count() const {
    return snapshot()->pattern_count();
  }

 private:
  /// Shard index for a registered pattern (wildcard bucket when its first
  /// segment could match any top-level segment).
  static std::size_t shard_of_pattern(const TopicPath& pattern);

  std::mutex write_mu_;
  AtomicSharedPtr<const Snapshot> snap_;
};

}  // namespace et::pubsub
