// Subscription bookkeeping for one broker.
//
// A broker tracks two kinds of interest:
//   * local consumers — directly connected clients (and broker-local
//     services such as the tracing service) keyed by endpoint;
//   * remote interest — neighbouring brokers that propagated a pattern,
//     used by reverse-path forwarding over the (acyclic) broker overlay.
//
// Patterns are hierarchical topics with optional wildcards (see
// common/topic_path.h). Each pattern is split into segments once, at
// registration; matching walks the precompiled patterns against a
// split-once TopicPath of the inbound topic, so routing one message
// across all tables splits the topic exactly once (bench_micro tracks
// the cost). Broker fan-outs are small enough that a trie/index is still
// unnecessary.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/topic_path.h"
#include "src/transport/network.h"

namespace et::pubsub {

/// Interest registry mapping topic patterns to endpoints.
class SubscriptionTable {
 public:
  /// Adds interest; returns true when this is the pattern's first
  /// subscriber (the caller should then propagate interest upstream).
  bool add(const std::string& pattern, transport::NodeId endpoint);

  /// Removes one endpoint's interest; returns true when the pattern has
  /// no subscribers left (caller should propagate the unsubscribe).
  bool remove(const std::string& pattern, transport::NodeId endpoint);

  /// Drops every subscription held by `endpoint` (client disconnect).
  /// Returns the patterns that became empty.
  std::vector<std::string> remove_endpoint(transport::NodeId endpoint);

  /// All endpoints whose patterns match `topic` (deduplicated).
  [[nodiscard]] std::set<transport::NodeId> match(const TopicPath& topic) const;
  [[nodiscard]] std::set<transport::NodeId> match(
      std::string_view topic) const {
    return match(TopicPath(topic));
  }

  /// True when at least one pattern matches `topic`.
  [[nodiscard]] bool any_match(const TopicPath& topic) const;
  [[nodiscard]] bool any_match(std::string_view topic) const {
    return any_match(TopicPath(topic));
  }

  /// All patterns currently registered (for interest propagation to a
  /// newly joined neighbour).
  [[nodiscard]] std::vector<std::string> patterns() const;

  /// True when `endpoint` holds a subscription matching `topic`.
  [[nodiscard]] bool endpoint_matches(transport::NodeId endpoint,
                                      const TopicPath& topic) const;
  [[nodiscard]] bool endpoint_matches(transport::NodeId endpoint,
                                      std::string_view topic) const {
    return endpoint_matches(endpoint, TopicPath(topic));
  }

  [[nodiscard]] std::size_t pattern_count() const { return table_.size(); }

 private:
  struct Entry {
    TopicPath compiled;  // pattern split once at registration
    std::set<transport::NodeId> subs;
  };

  std::map<std::string, Entry> table_;
};

}  // namespace et::pubsub
