// Subscription bookkeeping for one broker.
//
// A broker tracks two kinds of interest:
//   * local consumers — directly connected clients (and broker-local
//     services such as the tracing service) keyed by endpoint;
//   * remote interest — neighbouring brokers that propagated a pattern,
//     used by reverse-path forwarding over the (acyclic) broker overlay.
//
// Patterns are hierarchical topics with optional wildcards (see
// common/topic_path.h). Matching walks all registered patterns; broker
// fan-outs in this system are small enough that an index is unnecessary
// (the micro benchmark bench_micro tracks the cost).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/transport/network.h"

namespace et::pubsub {

/// Interest registry mapping topic patterns to endpoints.
class SubscriptionTable {
 public:
  /// Adds interest; returns true when this is the pattern's first
  /// subscriber (the caller should then propagate interest upstream).
  bool add(const std::string& pattern, transport::NodeId endpoint);

  /// Removes one endpoint's interest; returns true when the pattern has
  /// no subscribers left (caller should propagate the unsubscribe).
  bool remove(const std::string& pattern, transport::NodeId endpoint);

  /// Drops every subscription held by `endpoint` (client disconnect).
  /// Returns the patterns that became empty.
  std::vector<std::string> remove_endpoint(transport::NodeId endpoint);

  /// All endpoints whose patterns match `topic` (deduplicated).
  [[nodiscard]] std::set<transport::NodeId> match(
      std::string_view topic) const;

  /// True when at least one pattern matches `topic`.
  [[nodiscard]] bool any_match(std::string_view topic) const;

  /// All patterns currently registered (for interest propagation to a
  /// newly joined neighbour).
  [[nodiscard]] std::vector<std::string> patterns() const;

  /// True when `endpoint` holds a subscription matching `topic`.
  [[nodiscard]] bool endpoint_matches(transport::NodeId endpoint,
                                      std::string_view topic) const;

  [[nodiscard]] std::size_t pattern_count() const { return table_.size(); }

 private:
  std::map<std::string, std::set<transport::NodeId>> table_;
};

}  // namespace et::pubsub
