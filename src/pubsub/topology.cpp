#include "src/pubsub/topology.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "src/common/random.h"
#include "src/transport/fault_injector.h"

namespace et::pubsub {

Broker& Topology::add_broker(Broker::Options options) {
  brokers_.push_back(std::make_unique<Broker>(backend_, std::move(options)));
  union_find_.push_back(union_find_.size());
  return *brokers_.back();
}

std::size_t Topology::index_of(const Broker& b) const {
  for (std::size_t i = 0; i < brokers_.size(); ++i) {
    if (brokers_[i].get() == &b) return i;
  }
  throw std::invalid_argument("Topology: broker not owned by this topology");
}

std::size_t Topology::find_root(std::size_t i) {
  while (union_find_[i] != i) {
    union_find_[i] = union_find_[union_find_[i]];  // path halving
    i = union_find_[i];
  }
  return i;
}

void Topology::connect_brokers(Broker& a, Broker& b,
                               const transport::LinkParams& params) {
  const std::size_t ia = index_of(a);
  const std::size_t ib = index_of(b);
  const std::size_t ra = find_root(ia);
  const std::size_t rb = find_root(ib);
  if (ra == rb) {
    throw std::invalid_argument(
        "Topology: edge " + a.name() + " - " + b.name() +
        " would create a cycle in the broker overlay");
  }
  union_find_[ra] = rb;
  {
    std::lock_guard lock(edges_mu_);
    edges_.emplace_back(ia, ib);
  }
  backend_.link(a.node(), b.node(), params);
  a.peer(b.node());
  b.peer(a.node());
}

void Topology::add_standby(std::size_t i, std::size_t j,
                           const transport::LinkParams& params) {
  backend_.link(brokers_[i]->node(), brokers_[j]->node(), params);
  std::lock_guard lock(edges_mu_);
  standby_edges_.emplace_back(i, j);
}

bool Topology::has_edge_locked(std::size_t a, std::size_t b) const {
  for (const auto& [x, y] : edges_) {
    if ((x == a && y == b) || (x == b && y == a)) return true;
  }
  return false;
}

void Topology::adopt_repair_edge(std::size_t a, std::size_t b) {
  std::lock_guard lock(edges_mu_);
  for (auto it = standby_edges_.begin(); it != standby_edges_.end(); ++it) {
    if ((it->first == a && it->second == b) ||
        (it->first == b && it->second == a)) {
      standby_edges_.erase(it);
      break;
    }
  }
  if (!has_edge_locked(a, b)) edges_.emplace_back(a, b);
}

void Topology::retire_edge(std::size_t a, std::size_t b) {
  std::lock_guard lock(edges_mu_);
  for (auto it = edges_.begin(); it != edges_.end(); ++it) {
    if ((it->first == a && it->second == b) ||
        (it->first == b && it->second == a)) {
      edges_.erase(it);
      return;
    }
  }
}

std::size_t Topology::diameter() const {
  const std::size_t n = brokers_.size();
  if (n < 2) return 0;
  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& [a, b] : edges()) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::size_t best = 0;
  std::vector<std::size_t> dist(n);
  for (std::size_t start = 0; start < n; ++start) {
    std::fill(dist.begin(), dist.end(), SIZE_MAX);
    dist[start] = 0;
    std::queue<std::size_t> q;
    q.push(start);
    while (!q.empty()) {
      const std::size_t u = q.front();
      q.pop();
      best = std::max(best, dist[u]);
      for (const std::size_t v : adj[u]) {
        if (dist[v] == SIZE_MAX) {
          dist[v] = dist[u] + 1;
          q.push(v);
        }
      }
    }
  }
  return best;
}

namespace {

Broker::Options options_for(const BrokerOptionsFn& options,
                            std::string name) {
  Broker::Options o = options ? options(name) : Broker::Options{};
  o.name = std::move(name);  // keep overlay naming uniform
  return o;
}

}  // namespace

std::vector<Broker*> Topology::make_chain(std::size_t n,
                                          const transport::LinkParams& params,
                                          const std::string& prefix,
                                          const BrokerOptionsFn& options) {
  std::vector<Broker*> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(
        &add_broker(options_for(options, prefix + std::to_string(i))));
    if (i > 0) connect_brokers(*out[i - 1], *out[i], params);
  }
  return out;
}

void Topology::partition(const std::vector<std::vector<Broker*>>& groups) {
  std::vector<std::vector<transport::NodeId>> node_groups;
  node_groups.reserve(groups.size());
  for (const auto& group : groups) {
    std::vector<transport::NodeId> nodes;
    nodes.reserve(group.size());
    for (const Broker* b : group) nodes.push_back(b->node());
    node_groups.push_back(std::move(nodes));
  }
  backend_.faults().partition(std::move(node_groups));
}

void Topology::heal() { backend_.faults().heal(); }

void Topology::crash(Broker& b) { backend_.faults().crash(b.node()); }

void Topology::restart(Broker& b) { backend_.faults().restart(b.node()); }

std::vector<Broker*> Topology::make_star(std::size_t leaves,
                                         const transport::LinkParams& params,
                                         const std::string& prefix,
                                         const BrokerOptionsFn& options) {
  std::vector<Broker*> out;
  out.push_back(&add_broker(options_for(options, prefix + "-hub")));
  for (std::size_t i = 0; i < leaves; ++i) {
    out.push_back(
        &add_broker(options_for(options, prefix + std::to_string(i))));
    connect_brokers(*out[0], *out.back(), params);
  }
  return out;
}

std::vector<Broker*> Topology::make_ring(std::size_t n,
                                         const transport::LinkParams& params,
                                         const std::string& prefix,
                                         const BrokerOptionsFn& options) {
  std::vector<Broker*> out = make_chain(n, params, prefix, options);
  if (n >= 3) {
    // Close the physical ring, but keep the overlay the spanning chain:
    // the standby edge is linked on the backend and never peered. It is
    // recorded in standby_edges() so the repair protocol can find and
    // activate it.
    add_standby(index_of(*out.back()), index_of(*out.front()), params);
  }
  return out;
}

std::vector<Broker*> Topology::make_tree(std::size_t n, std::size_t arity,
                                         const transport::LinkParams& params,
                                         const std::string& prefix,
                                         const BrokerOptionsFn& options) {
  if (arity == 0) {
    throw std::invalid_argument("Topology::make_tree: arity must be >= 1");
  }
  std::vector<Broker*> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(
        &add_broker(options_for(options, prefix + std::to_string(i))));
    if (i > 0) connect_brokers(*out[(i - 1) / arity], *out[i], params);
  }
  // Standby shortcut from the root to the deepest leaf (skipped when they
  // are already tree-adjacent): severing any root-side edge leaves the
  // repair protocol a pre-linked path back to the detached subtree.
  if (n >= 3 && (n - 2) / arity != 0) {
    add_standby(index_of(*out.front()), index_of(*out.back()), params);
  }
  return out;
}

std::vector<Broker*> Topology::make_clusters(
    std::size_t cores, std::size_t leaves_per_core,
    const transport::LinkParams& params, const std::string& prefix,
    const BrokerOptionsFn& options) {
  std::vector<Broker*> out;
  for (std::size_t c = 0; c < cores; ++c) {
    out.push_back(
        &add_broker(options_for(options, prefix + "-core" +
                                             std::to_string(c))));
    if (c > 0) connect_brokers(*out[c - 1], *out[c], params);
  }
  for (std::size_t c = 0; c < cores; ++c) {
    for (std::size_t l = 0; l < leaves_per_core; ++l) {
      out.push_back(&add_broker(options_for(
          options, prefix + "-r" + std::to_string(c) + "n" +
                       std::to_string(l))));
      connect_brokers(*out[c], *out.back(), params);
    }
  }
  // Standby bypass across the core chain: any single core-to-core cut
  // can be routed around by activating the end-to-end link.
  if (cores >= 3) {
    add_standby(index_of(*out[0]), index_of(*out[cores - 1]), params);
  }
  return out;
}

std::vector<Broker*> Topology::make_random_tree(
    std::size_t n, std::size_t max_degree, std::uint64_t seed,
    const transport::LinkParams& params, const std::string& prefix,
    const BrokerOptionsFn& options) {
  if (max_degree < 2) {
    throw std::invalid_argument(
        "Topology::make_random_tree: max_degree must be >= 2");
  }
  Rng rng(seed);
  std::vector<Broker*> out;
  std::vector<std::size_t> degree;
  std::vector<std::size_t> open;  // indices with degree < max_degree
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(
        &add_broker(options_for(options, prefix + std::to_string(i))));
    degree.push_back(0);
    if (i > 0) {
      const std::size_t pick =
          open[static_cast<std::size_t>(rng.next_below(open.size()))];
      connect_brokers(*out[pick], *out[i], params);
      degree[pick] += 1;
      degree[i] += 1;
      if (degree[pick] >= max_degree) {
        open.erase(std::find(open.begin(), open.end(), pick));
      }
    }
    if (degree[i] < max_degree) open.push_back(i);
  }
  // Standby shortcut between the first and last broker unless the random
  // attachment already made them tree-adjacent.
  if (n >= 3) {
    const std::size_t i0 = index_of(*out.front());
    const std::size_t i1 = index_of(*out.back());
    bool adjacent = false;
    {
      std::lock_guard lock(edges_mu_);
      adjacent = has_edge_locked(i0, i1);
    }
    if (!adjacent) add_standby(i0, i1, params);
  }
  return out;
}

}  // namespace et::pubsub
