#include "src/pubsub/topology.h"

#include <stdexcept>

#include "src/transport/fault_injector.h"

namespace et::pubsub {

Broker& Topology::add_broker(Broker::Options options) {
  brokers_.push_back(std::make_unique<Broker>(backend_, std::move(options)));
  union_find_.push_back(union_find_.size());
  return *brokers_.back();
}

std::size_t Topology::index_of(const Broker& b) const {
  for (std::size_t i = 0; i < brokers_.size(); ++i) {
    if (brokers_[i].get() == &b) return i;
  }
  throw std::invalid_argument("Topology: broker not owned by this topology");
}

std::size_t Topology::find_root(std::size_t i) {
  while (union_find_[i] != i) {
    union_find_[i] = union_find_[union_find_[i]];  // path halving
    i = union_find_[i];
  }
  return i;
}

void Topology::connect_brokers(Broker& a, Broker& b,
                               const transport::LinkParams& params) {
  const std::size_t ia = index_of(a);
  const std::size_t ib = index_of(b);
  const std::size_t ra = find_root(ia);
  const std::size_t rb = find_root(ib);
  if (ra == rb) {
    throw std::invalid_argument(
        "Topology: edge " + a.name() + " - " + b.name() +
        " would create a cycle in the broker overlay");
  }
  union_find_[ra] = rb;
  backend_.link(a.node(), b.node(), params);
  a.peer(b.node());
  b.peer(a.node());
}

namespace {

Broker::Options options_for(const BrokerOptionsFn& options,
                            std::string name) {
  Broker::Options o = options ? options(name) : Broker::Options{};
  o.name = std::move(name);  // keep overlay naming uniform
  return o;
}

}  // namespace

std::vector<Broker*> Topology::make_chain(std::size_t n,
                                          const transport::LinkParams& params,
                                          const std::string& prefix,
                                          const BrokerOptionsFn& options) {
  std::vector<Broker*> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(
        &add_broker(options_for(options, prefix + std::to_string(i))));
    if (i > 0) connect_brokers(*out[i - 1], *out[i], params);
  }
  return out;
}

void Topology::partition(const std::vector<std::vector<Broker*>>& groups) {
  std::vector<std::vector<transport::NodeId>> node_groups;
  node_groups.reserve(groups.size());
  for (const auto& group : groups) {
    std::vector<transport::NodeId> nodes;
    nodes.reserve(group.size());
    for (const Broker* b : group) nodes.push_back(b->node());
    node_groups.push_back(std::move(nodes));
  }
  backend_.faults().partition(std::move(node_groups));
}

void Topology::heal() { backend_.faults().heal(); }

void Topology::crash(Broker& b) { backend_.faults().crash(b.node()); }

void Topology::restart(Broker& b) { backend_.faults().restart(b.node()); }

std::vector<Broker*> Topology::make_star(std::size_t leaves,
                                         const transport::LinkParams& params,
                                         const std::string& prefix,
                                         const BrokerOptionsFn& options) {
  std::vector<Broker*> out;
  out.push_back(&add_broker(options_for(options, prefix + "-hub")));
  for (std::size_t i = 0; i < leaves; ++i) {
    out.push_back(
        &add_broker(options_for(options, prefix + std::to_string(i))));
    connect_brokers(*out[0], *out.back(), params);
  }
  return out;
}

}  // namespace et::pubsub
