// Hierarchical interest aggregation for one broker→neighbour edge.
//
// Interest propagation used to re-announce every subscription pattern
// verbatim at every hop, so a tracker following N entities planted N
// per-(tracker,entity) edges in every broker between it and the entities
// — the O(entities × trackers) state ROADMAP item 1 calls out. An
// `InterestSummaryTable` collapses the patterns a broker announces to one
// neighbour into per-topic-prefix summaries: every pattern whose first
// `depth` segments are concrete folds into the single wildcard edge
// `<first depth segments>/#`, refcounted by the distinct patterns behind
// it. The neighbour sees one subscribe when the first pattern under a
// prefix appears and one unsubscribe when the last disappears, no matter
// how many trackers and entities churn in between.
//
// Summaries widen interest (a `prefix/#` edge pulls every publication
// under the prefix one hop further than exact patterns would), which is
// the classic aggregation trade: bounded per-broker state for some
// false-positive forwarding inside the summarized region. The overlay
// stays acyclic, so widened interest can never loop traffic.
//
// Summarization is idempotent across hops: a received `prefix/#` edge
// re-summarizes to itself, so multi-hop chains converge to exactly one
// edge per (neighbour, prefix).
//
// One table serves one neighbour (the broker keeps a map keyed by peer) —
// that keeps split-horizon propagation exact: which neighbours learn of a
// pattern depends on where it arrived from, so refcounts must be
// per-neighbour or retractions would strand edges.
//
// Not thread-safe; owned and touched only by the broker's node context,
// like the rest of its propagation state.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/topic_path.h"

namespace et::pubsub {

/// The summary form of `pattern` at `depth`: `<first depth segments>/#`
/// when the pattern is longer than `depth` segments and its first `depth`
/// segments are wildcard-free; otherwise the canonical pattern itself
/// (too short or too wild to summarize). depth == 0 disables
/// summarization (identity).
[[nodiscard]] std::string summarize_pattern(const TopicPath& pattern,
                                            std::size_t depth);

class InterestSummaryTable {
 public:
  explicit InterestSummaryTable(std::size_t depth) : depth_(depth) {}

  /// Records that `pattern` needs upstream interest on this edge. Returns
  /// the summary pattern to announce iff this created a new summarized
  /// edge; nullopt when the edge already exists (or the same pattern was
  /// already recorded — re-adds are idempotent, never double-counted).
  std::optional<std::string> add(const TopicPath& pattern);

  /// Withdraws `pattern` from this edge. Returns the summary pattern to
  /// retract iff its last backing pattern is gone; nullopt otherwise
  /// (including for patterns never recorded — removes never underflow).
  std::optional<std::string> remove(const TopicPath& pattern);

  /// Summarized edges currently announced, sorted (anti-entropy resync:
  /// re-announce all of these to the neighbour; subscription-table adds
  /// are idempotent on the receiving side).
  [[nodiscard]] std::vector<std::string> announced() const;

  /// Live summarized edges on this neighbour link.
  [[nodiscard]] std::size_t edge_count() const { return refs_.size(); }

  /// Distinct backing patterns recorded.
  [[nodiscard]] std::size_t pattern_count() const { return patterns_.size(); }

  /// The backing patterns themselves, sorted (resync uses the union
  /// across edges to back-fill a late-joined neighbour).
  [[nodiscard]] std::vector<std::string> recorded_patterns() const {
    return {patterns_.begin(), patterns_.end()};
  }

  [[nodiscard]] std::size_t depth() const { return depth_; }

 private:
  std::size_t depth_;
  /// Distinct patterns recorded (dedup so double-announces at the broker
  /// layer can never skew a refcount).
  std::set<std::string> patterns_;
  /// summary pattern -> number of distinct backing patterns.
  std::map<std::string, std::size_t> refs_;
};

}  // namespace et::pubsub
