#include "src/pubsub/constrained_topic.h"

#include "src/common/topic_path.h"

namespace et::pubsub {

namespace {

constexpr std::string_view kKeyword = "Constrained";

bool is_actions_token(std::string_view s, AllowedActions& out) {
  if (s == "Publish-Only" || s == "PublishOnly" || s == "Publish") {
    out = AllowedActions::kPublishOnly;
    return true;
  }
  if (s == "Subscribe-Only" || s == "SubscribeOnly" || s == "Subscribe") {
    out = AllowedActions::kSubscribeOnly;
    return true;
  }
  if (s == "PublishSubscribe") {
    out = AllowedActions::kPublishSubscribe;
    return true;
  }
  return false;
}

bool is_distribution_token(std::string_view s, Distribution& out) {
  if (s == "Suppress") {
    out = Distribution::kSuppress;
    return true;
  }
  if (s == "Disseminate") {
    out = Distribution::kDisseminate;
    return true;
  }
  return false;
}

}  // namespace

std::string to_string(AllowedActions a) {
  switch (a) {
    case AllowedActions::kPublishOnly: return "Publish-Only";
    case AllowedActions::kSubscribeOnly: return "Subscribe-Only";
    case AllowedActions::kPublishSubscribe: return "PublishSubscribe";
  }
  return "?";
}

std::string to_string(Distribution d) {
  return d == Distribution::kSuppress ? "Suppress" : "Disseminate";
}

bool is_constrained_topic(std::string_view topic) {
  const auto segs = split_topic(topic);
  return !segs.empty() && segs[0] == kKeyword;
}

std::optional<ConstrainedTopic> ConstrainedTopic::parse(
    std::string_view topic) {
  return parse(TopicPath(topic));
}

std::optional<ConstrainedTopic> ConstrainedTopic::parse(
    const TopicPath& topic) {
  const auto& segs = topic.segments();
  if (segs.empty() || segs[0] != kKeyword) return std::nullopt;

  ConstrainedTopic ct;
  std::size_t i = 1;
  AllowedActions aa;
  Distribution dist;

  // Elements may be omitted with defaults assumed (paper §3.1 declares
  // /Constrained/Traces/Limited ≡
  // /Constrained/Traces/Broker/PublishSubscribe/Limited). Deterministic
  // disambiguation rule: find the first vocabulary token (an actions or
  // distribution value) among the next three segments. The free-form
  // tokens before it fill {EventType} then {Constrainer}:
  //   * two tokens  -> event type, constrainer;
  //   * one token   -> "Broker" is the constrainer, anything else is the
  //     event type (an entity constrainer therefore requires an explicit
  //     event type — our canonical builders always emit one);
  //   * zero tokens -> both default.
  // When no vocabulary token exists, the first free token (if any) is the
  // event type and the rest are suffixes.
  std::size_t vocab = i;
  const std::size_t window = std::min(segs.size(), i + 3);
  while (vocab < window && !is_actions_token(segs[vocab], aa) &&
         !is_distribution_token(segs[vocab], dist)) {
    ++vocab;
  }
  const bool found_vocab =
      vocab < window && (is_actions_token(segs[vocab], aa) ||
                         is_distribution_token(segs[vocab], dist));

  const std::size_t free_tokens = (found_vocab ? vocab : window) - i;
  if (found_vocab) {
    if (free_tokens == 2) {
      ct.event_type = segs[i];
      ct.constrainer = segs[i + 1];
    } else if (free_tokens == 1) {
      if (segs[i] == "Broker") {
        ct.constrainer = segs[i];
      } else {
        ct.event_type = segs[i];
      }
    }
    i += free_tokens;
  } else if (i < segs.size()) {
    ct.event_type = segs[i];
    ++i;
    ct.suffixes.assign(segs.begin() + static_cast<std::ptrdiff_t>(i),
                       segs.end());
    return ct;
  }

  if (i < segs.size() && is_actions_token(segs[i], aa)) {
    ct.allowed = aa;
    ++i;
  }
  if (i < segs.size() && is_distribution_token(segs[i], dist)) {
    ct.distribution = dist;
    ++i;
  }
  ct.suffixes.assign(segs.begin() + static_cast<std::ptrdiff_t>(i),
                     segs.end());
  return ct;
}

std::string ConstrainedTopic::to_topic() const {
  std::vector<std::string> segs;
  segs.emplace_back(kKeyword);
  segs.push_back(event_type);
  segs.push_back(constrainer);
  segs.push_back(pubsub::to_string(allowed));
  segs.push_back(pubsub::to_string(distribution));
  segs.insert(segs.end(), suffixes.begin(), suffixes.end());
  return join_topic(segs);
}

Status check_constrained_action(std::string_view topic, TopicAction action,
                                bool actor_is_broker,
                                std::string_view actor_id) {
  return check_constrained_action(ConstrainedTopic::parse(topic), action,
                                  actor_is_broker, actor_id);
}

Status check_constrained_action(const std::optional<ConstrainedTopic>& ct,
                                TopicAction action, bool actor_is_broker,
                                std::string_view actor_id) {
  if (!ct) return Status::ok();  // unconstrained topic

  const bool actor_is_constrainer =
      ct->constrainer_is_broker() ? actor_is_broker
                                  : (actor_id == ct->constrainer);

  const bool action_reserved =
      ct->allowed == AllowedActions::kPublishSubscribe ||
      (action == TopicAction::kPublish &&
       ct->allowed == AllowedActions::kPublishOnly) ||
      (action == TopicAction::kSubscribe &&
       ct->allowed == AllowedActions::kSubscribeOnly);

  if (action_reserved && !actor_is_constrainer) {
    return permission_denied(
        std::string(action == TopicAction::kPublish ? "publish" : "subscribe") +
        " on constrained topic reserved for " + ct->constrainer);
  }
  return Status::ok();
}

namespace trace_topics {

std::string registration() {
  return "Constrained/Traces/Broker/Subscribe-Only/Registration";
}

std::string registration_batch() {
  return "Constrained/Traces/Broker/Subscribe-Only/RegistrationBatch";
}

std::string entity_to_broker(std::string_view trace_topic,
                             std::string_view session_id) {
  return "Constrained/Traces/Broker/Subscribe-Only/Limited/" +
         std::string(trace_topic) + "/" + std::string(session_id);
}

std::string broker_to_entity(std::string_view entity_id,
                             std::string_view trace_topic,
                             std::string_view session_id) {
  return "Constrained/Traces/" + std::string(entity_id) + "/Subscribe-Only/" +
         std::string(trace_topic) + "/" + std::string(session_id);
}

std::string trace_publication(std::string_view trace_topic,
                              std::string_view kind) {
  return "Constrained/Traces/Broker/Publish-Only/" + std::string(trace_topic) +
         "/" + std::string(kind);
}

std::string gauge_interest(std::string_view trace_topic) {
  return trace_publication(trace_topic, kInterest);
}

std::string interest_response(std::string_view trace_topic) {
  return "Constrained/Traces/Broker/Subscribe-Only/" +
         std::string(trace_topic) + "/" + std::string(kInterest);
}

}  // namespace trace_topics
}  // namespace et::pubsub
