#include "src/pubsub/client.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/topic_path.h"

namespace et::pubsub {

using transport::NodeId;

Client::Client(transport::NetworkBackend& backend, std::string entity_id)
    : backend_(backend), entity_id_(std::move(entity_id)) {
  node_ = backend_.add_node(
      entity_id_, [this](NodeId from, BytesView payload) {
        on_packet(from, payload);
      });
}

Client::~Client() { backend_.detach(node_); }

void Client::in_context(transport::Task task) {
  backend_.post(node_, std::move(task));
}

Status Client::send_to_broker(const Frame& f) {
  return backend_.send(node_, broker_, f.serialize());
}

void Client::connect(NodeId broker, const transport::LinkParams& params,
                     StatusHandler on_done) {
  backend_.link(node_, broker, params);
  in_context([this, broker, on_done = std::move(on_done)]() mutable {
    broker_ = broker;
    const std::uint64_t req = next_request_++;
    if (on_done) pending_[req] = std::move(on_done);
    const Status s = send_to_broker(make_connect(entity_id_, req));
    if (!s.is_ok()) {
      if (const auto it = pending_.find(req); it != pending_.end()) {
        auto cb = std::move(it->second);
        pending_.erase(it);
        cb(s);
      }
    }
  });
}

void Client::subscribe(const std::string& pattern, MessageHandler handler,
                       StatusHandler on_done) {
  const std::string norm = normalize_topic(pattern);
  in_context([this, norm, handler = std::move(handler),
              on_done = std::move(on_done)]() mutable {
    handlers_.emplace_back(norm, std::move(handler));
    const std::uint64_t req = next_request_++;
    if (on_done) pending_[req] = std::move(on_done);
    if (broker_ == transport::kInvalidNode) {
      ET_LOG(kWarn) << entity_id_ << ": subscribe before connect";
      return;
    }
    (void)send_to_broker(make_subscribe(norm, req));
  });
}

void Client::unsubscribe(const std::string& pattern) {
  const std::string norm = normalize_topic(pattern);
  in_context([this, norm] {
    std::erase_if(handlers_,
                  [&](const auto& p) { return p.first == norm; });
    if (broker_ != transport::kInvalidNode) {
      (void)send_to_broker(make_unsubscribe(norm));
    }
  });
}

void Client::resubscribe_all() {
  in_context([this] {
    if (broker_ == transport::kInvalidNode) return;
    std::vector<std::string> sent;
    for (const auto& [pattern, handler] : handlers_) {
      if (std::find(sent.begin(), sent.end(), pattern) != sent.end()) continue;
      sent.push_back(pattern);
      const std::uint64_t req = next_request_++;
      (void)send_to_broker(make_subscribe(pattern, req));
    }
  });
}

void Client::publish(const std::string& topic, Bytes payload) {
  Message m;
  m.topic = topic;
  m.payload = std::move(payload);
  publish(std::move(m));
}

void Client::publish(Message m) {
  in_context([this, m = std::move(m)]() mutable {
    if (m.publisher.empty()) m.publisher = entity_id_;
    if (m.sequence == 0) m.sequence = ++sequence_;
    if (m.timestamp == 0) m.timestamp = backend_.now();
    if (broker_ == transport::kInvalidNode) {
      ET_LOG(kWarn) << entity_id_ << ": publish before connect";
      return;
    }
    (void)send_to_broker(make_publish(std::move(m)));
  });
}

void Client::set_error_handler(StatusHandler handler) {
  in_context([this, handler = std::move(handler)]() mutable {
    error_handler_ = std::move(handler);
  });
}

void Client::on_packet(NodeId from, BytesView payload) {
  (void)from;
  FrameView f;
  try {
    f = FrameView::parse(payload);
  } catch (const SerializeError&) {
    return;  // garbage from the wire; clients just drop it
  }
  switch (f.type) {
    case FrameType::kConnectAck: {
      connected_ = true;
      if (const auto it = pending_.find(f.request_id); it != pending_.end()) {
        auto cb = std::move(it->second);
        pending_.erase(it);
        if (cb) cb(Status::ok());
      }
      break;
    }
    case FrameType::kSubscribeAck: {
      if (const auto it = pending_.find(f.request_id); it != pending_.end()) {
        auto cb = std::move(it->second);
        pending_.erase(it);
        if (cb) cb(Status::ok());
      }
      break;
    }
    case FrameType::kPublish: {
      if (!f.message) break;
      // Handlers take an owning Message; materialize once, and only when
      // at least one subscription actually matches.
      std::optional<Message> owned;
      for (const auto& [pattern, handler] : handlers_) {
        if (topic_matches(pattern, f.message->topic)) {
          if (!owned) owned = f.message->materialize();
          handler(*owned);
        }
      }
      if (owned) ++delivered_;
      break;
    }
    case FrameType::kError: {
      const Status s = permission_denied(std::string(f.detail));
      if (const auto it = pending_.find(f.request_id);
          f.request_id != 0 && it != pending_.end()) {
        auto cb = std::move(it->second);
        pending_.erase(it);
        if (cb) cb(s);
      } else if (error_handler_) {
        error_handler_(s);
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace et::pubsub
