// Constrained-topic grammar (paper §3.1, "Constrained Topics").
//
//   /Constrained/{EventType}/{Constrainer}/{AllowedActions}/{Distribution}
//       /{Other "/"-separated suffixes}
//
// The {AllowedActions} element lists the actions reserved for the
// *constrainer*; everyone else may perform only the complement:
//   * Publish (Publish-Only)   — only the constrainer publishes; any
//     entity may subscribe. Used for trace-delivery topics.
//   * Subscribe (Subscribe-Only) — only the constrainer subscribes; any
//     entity may publish (to reach the constrainer). Used for
//     registration/request topics.
//   * PublishSubscribe (default) — both actions reserved: nobody except
//     the constrainer may do anything (broker administrative topics).
//
// {Constrainer} is the literal `Broker` (any broker in the network) or an
// entity identifier. {Distribution} is `Disseminate` (default) or
// `Suppress` — Suppress keeps the constrainer's actions local to its own
// broker (publications are not forwarded; subscriptions are not
// propagated).
//
// Elements may be omitted from the middle of a topic; defaults are
// assumed. Per the paper, `/Constrained/Traces/Limited` equals
// `/Constrained/Traces/Broker/PublishSubscribe/Limited` — an omitted
// element is recognized because its value doesn't belong to the element's
// vocabulary, in which case the element takes its default and the token is
// re-examined as the next element.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/topic_path.h"

namespace et::pubsub {

/// {AllowedActions} vocabulary.
enum class AllowedActions : std::uint8_t {
  kPublishOnly,
  kSubscribeOnly,
  kPublishSubscribe,  // default
};

/// {Distribution} vocabulary.
enum class Distribution : std::uint8_t {
  kDisseminate,  // default
  kSuppress,
};

std::string to_string(AllowedActions a);
std::string to_string(Distribution d);

/// Parsed view of a constrained topic.
struct ConstrainedTopic {
  std::string event_type = "RealTime";  // default per the paper
  /// "Broker" or an entity id.
  std::string constrainer = "Broker";
  AllowedActions allowed = AllowedActions::kPublishSubscribe;
  Distribution distribution = Distribution::kDisseminate;
  /// Remaining "/"-separated suffix segments (trace topic UUID etc.).
  std::vector<std::string> suffixes;

  [[nodiscard]] bool constrainer_is_broker() const {
    return constrainer == "Broker";
  }

  /// Rebuilds the canonical fully-explicit topic string.
  [[nodiscard]] std::string to_topic() const;

  /// Parses `topic`. Returns nullopt when the topic is not constrained
  /// (doesn't start with the `Constrained` keyword).
  static std::optional<ConstrainedTopic> parse(std::string_view topic);

  /// Same grammar over an already-split topic (the broker's hot path
  /// splits each inbound topic once and reuses the TopicPath everywhere).
  static std::optional<ConstrainedTopic> parse(const TopicPath& topic);
};

/// True when `topic` starts with the Constrained keyword.
bool is_constrained_topic(std::string_view topic);

/// The action an endpoint attempts against a topic.
enum class TopicAction : std::uint8_t { kPublish, kSubscribe };

/// Authorization decision for `actor` attempting `action` on `topic`.
/// `actor_is_broker` marks broker overlay nodes; `actor_id` is the
/// claimed entity id. Non-constrained topics always allow.
Status check_constrained_action(std::string_view topic, TopicAction action,
                                bool actor_is_broker,
                                std::string_view actor_id);

/// Same decision over a pre-parsed topic (nullopt = unconstrained, always
/// allowed); avoids re-running the grammar when the caller already has it.
Status check_constrained_action(const std::optional<ConstrainedTopic>& ct,
                                TopicAction action, bool actor_is_broker,
                                std::string_view actor_id);

/// Builders for the specific constrained topics the tracing scheme uses.
/// `trace_topic` is the UUID string minted by the TDN.
namespace trace_topics {

/// /Constrained/Traces/Broker/Subscribe-Only/Registration — entities send
/// trace-registration requests here; (any) broker is the only subscriber.
std::string registration();

/// /Constrained/Traces/Broker/Subscribe-Only/RegistrationBatch — entity
/// hosts send batch registration requests (all co-hosted entities in one
/// round-trip) here; (any) broker is the only subscriber.
std::string registration_batch();

/// /Constrained/Traces/Broker/Subscribe-Only/Limited/<trace>/<session> —
/// traced entity -> hosting broker channel (ping responses, state).
std::string entity_to_broker(std::string_view trace_topic,
                             std::string_view session_id);

/// /Constrained/Traces/<entity>/Subscribe-Only/<trace>/<session> —
/// hosting broker -> traced entity channel (pings).
std::string broker_to_entity(std::string_view entity_id,
                             std::string_view trace_topic,
                             std::string_view session_id);

/// /Constrained/Traces/Broker/Publish-Only/<trace>/<kind> — broker
/// publishes traces of one kind; trackers subscribe.
std::string trace_publication(std::string_view trace_topic,
                              std::string_view kind);

/// Suffix names for per-type trace publication topics (paper Table 2).
inline constexpr const char* kChangeNotifications = "ChangeNotifications";
inline constexpr const char* kAllUpdates = "AllUpdates";
inline constexpr const char* kStateTransitions = "StateTransitions";
inline constexpr const char* kLoad = "Load";
inline constexpr const char* kNetworkMetrics = "NetworkMetrics";
inline constexpr const char* kInterest = "Interest";
/// Coalesced per-host availability digests (kind suffix; DESIGN.md §14).
inline constexpr const char* kDigest = "Digest";

/// /Constrained/Traces/Broker/Publish-Only/<trace>/Interest — broker's
/// GAUGE_INTEREST probe topic.
std::string gauge_interest(std::string_view trace_topic);

/// /Constrained/Traces/Broker/Subscribe-Only/<trace>/Interest — trackers
/// publish interest responses here.
std::string interest_response(std::string_view trace_topic);

}  // namespace trace_topics
}  // namespace et::pubsub
