// Self-healing broker overlay: peer failure detection and repair.
//
// The paper assumes broker-to-broker links stay up; the chaos subsystem
// (DESIGN.md §12) showed what happens when they don't — a single
// core-chain cut in cluster-of-stars permanently strands whole racks,
// because interest propagation has no notion of a neighbour dying. This
// layer closes the detect → repair loop:
//
//   * OverlayRepairService (one per broker, in its node context) runs a
//     peer-liveness ladder over neighbour links: a lightweight kKeepalive
//     probe per tick on a TimerWheel, misses escalating suspect → dead —
//     the same K-missed-heartbeats escalation the tracing layer applies
//     to entities, pointed at the overlay itself. Any frame received from
//     a watched peer (probe, ack or gossip) resets its ladder, so the
//     detector is robust to lossy links: a false positive needs every
//     probe, ack and reverse-probe lost for dead_misses consecutive
//     ticks. It also spreads a peer-exchange gossip record (broker name →
//     node id) so every broker accumulates a directory of endpoints it
//     could re-peer with.
//   * On declaring a peer dead the service tears down the routing state
//     via Broker::unpeer (interest summaries dropped, orphaned patterns
//     retracted) and reports the cut to the deployment's RepairPolicy.
//   * RepairPolicy (one per deployment) maintains the live edge set,
//     recomputes connectivity, and when a cut actually split the overlay
//     picks a repair edge: first a recorded Topology standby link
//     crossing the split, else a RAPTEE-style deterministic, seed-driven
//     scoring over gossip-learned endpoint pairs. It wires the edge
//     (link + peer both ends), adopts it into the Topology's edge list so
//     ground truth tracks the healed overlay, and schedules
//     resync_interest rounds so interest re-propagates and routing
//     converges without any entity re-registering.
//
// Every decision is logged to an append-only action log ("t=<us> ..."),
// byte-identical across same-seed VirtualTimeNetwork runs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/timer_wheel.h"
#include "src/pubsub/broker.h"
#include "src/pubsub/topology.h"
#include "src/transport/network.h"

namespace et::pubsub {

class RepairPolicy;

/// Per-broker peer-liveness detector + endpoint gossip. All state lives
/// in the broker's node context; construct before traffic, then start().
class OverlayRepairService {
 public:
  struct Options {
    /// Probe cadence. Detection time is ~dead_misses * keepalive_interval,
    /// which deployments should keep under their detection bound (the
    /// chaos oracle's I1 window).
    Duration keepalive_interval = 100 * kMillisecond;
    /// Consecutive silent ticks before a peer is logged as suspected.
    int suspect_misses = 3;
    /// Consecutive silent ticks before a peer is declared dead, unpeered
    /// and reported to the RepairPolicy.
    int dead_misses = 6;
    /// Send the endpoint directory every Nth tick (0 disables gossip).
    int gossip_every = 2;
  };

  struct Stats {
    std::uint64_t probes_sent = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t suspects = 0;     // suspect escalations
    std::uint64_t peers_declared_dead = 0;
    std::uint64_t gossip_sent = 0;
    std::uint64_t gossip_merged = 0;  // directory entries learned
  };

  /// Installs the broker's link handler and peer listener. `policy` may
  /// be null (detection + teardown only, no repair). Pass `{}` for the
  /// default options.
  OverlayRepairService(Broker& broker, RepairPolicy* policy,
                       Options options);
  ~OverlayRepairService();

  OverlayRepairService(const OverlayRepairService&) = delete;
  OverlayRepairService& operator=(const OverlayRepairService&) = delete;

  /// Begins probing current neighbours (posts into the node context; safe
  /// to call from setup code).
  void start();

  /// Gossip-learned endpoint directory (name -> node), including self and
  /// current neighbours. Thread-safe.
  [[nodiscard]] std::map<std::string, transport::NodeId> directory() const;

  /// True when `name` is in the directory. Thread-safe.
  [[nodiscard]] bool knows(const std::string& name) const;

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] Broker& broker() { return broker_; }

 private:
  struct Watch {
    int misses = 0;
    bool suspected = false;
    /// A frame arrived since the last tick; seeded true on watch start so
    /// the first tick never counts a miss.
    bool saw_activity = true;
  };

  // All private methods run in the broker's node context.
  void on_link_frame(transport::NodeId from, const FrameView& f);
  void on_peer_change(transport::NodeId peer, bool added);
  void tick();
  void send_gossip();
  void merge_directory(std::string_view record);
  void declare_dead(transport::NodeId peer);

  Broker& broker_;
  transport::NetworkBackend& backend_;
  RepairPolicy* policy_;
  Options options_;
  std::unique_ptr<TimerWheel> wheel_;
  std::map<transport::NodeId, Watch> watches_;
  std::uint64_t seq_ = 0;
  int ticks_until_gossip_ = 1;
  bool started_ = false;

  mutable std::mutex dir_mu_;
  std::map<std::string, transport::NodeId> directory_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

/// Deployment-wide repair decision maker. Thread-safe: dead-peer reports
/// arrive from broker node contexts (concurrently on RealTimeNetwork).
class RepairPolicy {
 public:
  struct Options {
    /// Prefer activating a recorded Topology standby edge that crosses
    /// the split.
    bool activate_standby = true;
    /// Fall back to creating a fresh edge between gossip-known endpoints.
    bool repeer = true;
    /// Drives the candidate scoring; same seed -> byte-identical action
    /// log on the virtual-time backend.
    std::uint64_t seed = 0;
    /// Link parameters for freshly created repair edges.
    transport::LinkParams link_params;
    /// Interest-resync rounds after wiring a repair edge. The first round
    /// runs one spacing after peering (never immediately: both ends must
    /// be peered before subscribe frames cross, or the receiver would
    /// treat its new neighbour as a misbehaving client); later rounds
    /// back-fill announcements lost on lossy links.
    int resync_rounds = 3;
    Duration resync_spacing = 200 * kMillisecond;
  };

  struct Stats {
    std::uint64_t reports = 0;            // dead-peer reports received
    std::uint64_t splits = 0;             // reports that split the overlay
    std::uint64_t standby_activations = 0;
    std::uint64_t repeers = 0;            // fresh gossip-scored edges
    std::uint64_t stranded = 0;           // splits with no usable candidate
  };

  RepairPolicy(transport::NetworkBackend& backend, Topology& topology,
               Options options);

  RepairPolicy(const RepairPolicy&) = delete;
  RepairPolicy& operator=(const RepairPolicy&) = delete;

  /// Registers a broker and its repair service. Call for every broker
  /// before traffic starts; the live edge set is seeded from the
  /// Topology's current edges on first report.
  void attach(std::size_t index, Broker& broker,
              OverlayRepairService& service);

  /// A repair service declared `dead_node` unreachable from
  /// `reporter_node`. Runs the full decision procedure synchronously
  /// (component check, standby scan, candidate scoring) and posts the
  /// wiring into the affected brokers' node contexts.
  void report_peer_dead(transport::NodeId reporter_node,
                        transport::NodeId dead_node);

  /// Append-only decision log, "t=<us> <action>" per entry.
  [[nodiscard]] std::vector<std::string> action_log() const;

  [[nodiscard]] Stats stats() const;

 private:
  struct Member {
    std::size_t index = 0;
    Broker* broker = nullptr;
    OverlayRepairService* service = nullptr;
  };

  // All methods below require mu_ held.
  void seed_edges_locked();
  void log_locked(const std::string& what);
  [[nodiscard]] std::vector<std::size_t> components_locked() const;
  void wire_edge_locked(std::size_t a, std::size_t b);

  transport::NetworkBackend& backend_;
  Topology& topology_;
  Options options_;

  mutable std::mutex mu_;
  std::map<transport::NodeId, Member> members_;       // by node id
  std::map<std::size_t, transport::NodeId> nodes_;    // index -> node id
  std::set<std::pair<std::size_t, std::size_t>> alive_;  // normalized edges
  /// Repair attempts per normalized edge; candidates tried twice are
  /// excluded so a crashed (rather than cut) endpoint cannot induce an
  /// endless repair loop.
  std::map<std::pair<std::size_t, std::size_t>, int> attempts_;
  bool seeded_ = false;
  std::vector<std::string> log_;
  Stats stats_;
};

}  // namespace et::pubsub
