# Empty dependencies file for bench_key_distribution.
# This may be replaced when dependencies are built.
