file(REMOVE_RECURSE
  "CMakeFiles/bench_key_distribution.dir/bench_key_distribution.cpp.o"
  "CMakeFiles/bench_key_distribution.dir/bench_key_distribution.cpp.o.d"
  "bench_key_distribution"
  "bench_key_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_key_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
