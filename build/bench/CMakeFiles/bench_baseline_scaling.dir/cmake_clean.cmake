file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_scaling.dir/bench_baseline_scaling.cpp.o"
  "CMakeFiles/bench_baseline_scaling.dir/bench_baseline_scaling.cpp.o.d"
  "bench_baseline_scaling"
  "bench_baseline_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
