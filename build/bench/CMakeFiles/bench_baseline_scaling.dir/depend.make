# Empty dependencies file for bench_baseline_scaling.
# This may be replaced when dependencies are built.
