file(REMOVE_RECURSE
  "CMakeFiles/bench_signing_optimization.dir/bench_signing_optimization.cpp.o"
  "CMakeFiles/bench_signing_optimization.dir/bench_signing_optimization.cpp.o.d"
  "bench_signing_optimization"
  "bench_signing_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_signing_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
