# Empty dependencies file for bench_signing_optimization.
# This may be replaced when dependencies are built.
