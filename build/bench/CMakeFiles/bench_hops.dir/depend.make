# Empty dependencies file for bench_hops.
# This may be replaced when dependencies are built.
