file(REMOVE_RECURSE
  "CMakeFiles/bench_hops.dir/bench_hops.cpp.o"
  "CMakeFiles/bench_hops.dir/bench_hops.cpp.o.d"
  "bench_hops"
  "bench_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
