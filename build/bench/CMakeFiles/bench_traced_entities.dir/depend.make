# Empty dependencies file for bench_traced_entities.
# This may be replaced when dependencies are built.
