file(REMOVE_RECURSE
  "CMakeFiles/bench_traced_entities.dir/bench_traced_entities.cpp.o"
  "CMakeFiles/bench_traced_entities.dir/bench_traced_entities.cpp.o.d"
  "bench_traced_entities"
  "bench_traced_entities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traced_entities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
