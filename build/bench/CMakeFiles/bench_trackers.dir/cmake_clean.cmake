file(REMOVE_RECURSE
  "CMakeFiles/bench_trackers.dir/bench_trackers.cpp.o"
  "CMakeFiles/bench_trackers.dir/bench_trackers.cpp.o.d"
  "bench_trackers"
  "bench_trackers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trackers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
