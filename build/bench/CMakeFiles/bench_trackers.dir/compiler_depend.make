# Empty compiler generated dependencies file for bench_trackers.
# This may be replaced when dependencies are built.
