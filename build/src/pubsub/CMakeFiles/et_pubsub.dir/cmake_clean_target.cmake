file(REMOVE_RECURSE
  "libet_pubsub.a"
)
