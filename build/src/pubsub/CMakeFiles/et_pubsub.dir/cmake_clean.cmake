file(REMOVE_RECURSE
  "CMakeFiles/et_pubsub.dir/broker.cpp.o"
  "CMakeFiles/et_pubsub.dir/broker.cpp.o.d"
  "CMakeFiles/et_pubsub.dir/client.cpp.o"
  "CMakeFiles/et_pubsub.dir/client.cpp.o.d"
  "CMakeFiles/et_pubsub.dir/constrained_topic.cpp.o"
  "CMakeFiles/et_pubsub.dir/constrained_topic.cpp.o.d"
  "CMakeFiles/et_pubsub.dir/message.cpp.o"
  "CMakeFiles/et_pubsub.dir/message.cpp.o.d"
  "CMakeFiles/et_pubsub.dir/subscription.cpp.o"
  "CMakeFiles/et_pubsub.dir/subscription.cpp.o.d"
  "CMakeFiles/et_pubsub.dir/topology.cpp.o"
  "CMakeFiles/et_pubsub.dir/topology.cpp.o.d"
  "libet_pubsub.a"
  "libet_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
