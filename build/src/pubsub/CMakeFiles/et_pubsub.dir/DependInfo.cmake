
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pubsub/broker.cpp" "src/pubsub/CMakeFiles/et_pubsub.dir/broker.cpp.o" "gcc" "src/pubsub/CMakeFiles/et_pubsub.dir/broker.cpp.o.d"
  "/root/repo/src/pubsub/client.cpp" "src/pubsub/CMakeFiles/et_pubsub.dir/client.cpp.o" "gcc" "src/pubsub/CMakeFiles/et_pubsub.dir/client.cpp.o.d"
  "/root/repo/src/pubsub/constrained_topic.cpp" "src/pubsub/CMakeFiles/et_pubsub.dir/constrained_topic.cpp.o" "gcc" "src/pubsub/CMakeFiles/et_pubsub.dir/constrained_topic.cpp.o.d"
  "/root/repo/src/pubsub/message.cpp" "src/pubsub/CMakeFiles/et_pubsub.dir/message.cpp.o" "gcc" "src/pubsub/CMakeFiles/et_pubsub.dir/message.cpp.o.d"
  "/root/repo/src/pubsub/subscription.cpp" "src/pubsub/CMakeFiles/et_pubsub.dir/subscription.cpp.o" "gcc" "src/pubsub/CMakeFiles/et_pubsub.dir/subscription.cpp.o.d"
  "/root/repo/src/pubsub/topology.cpp" "src/pubsub/CMakeFiles/et_pubsub.dir/topology.cpp.o" "gcc" "src/pubsub/CMakeFiles/et_pubsub.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/et_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
