# Empty dependencies file for et_pubsub.
# This may be replaced when dependencies are built.
