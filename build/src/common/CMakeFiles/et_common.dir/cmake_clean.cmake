file(REMOVE_RECURSE
  "CMakeFiles/et_common.dir/bytes.cpp.o"
  "CMakeFiles/et_common.dir/bytes.cpp.o.d"
  "CMakeFiles/et_common.dir/clock.cpp.o"
  "CMakeFiles/et_common.dir/clock.cpp.o.d"
  "CMakeFiles/et_common.dir/logging.cpp.o"
  "CMakeFiles/et_common.dir/logging.cpp.o.d"
  "CMakeFiles/et_common.dir/random.cpp.o"
  "CMakeFiles/et_common.dir/random.cpp.o.d"
  "CMakeFiles/et_common.dir/serialize.cpp.o"
  "CMakeFiles/et_common.dir/serialize.cpp.o.d"
  "CMakeFiles/et_common.dir/stats.cpp.o"
  "CMakeFiles/et_common.dir/stats.cpp.o.d"
  "CMakeFiles/et_common.dir/status.cpp.o"
  "CMakeFiles/et_common.dir/status.cpp.o.d"
  "CMakeFiles/et_common.dir/topic_path.cpp.o"
  "CMakeFiles/et_common.dir/topic_path.cpp.o.d"
  "CMakeFiles/et_common.dir/uuid.cpp.o"
  "CMakeFiles/et_common.dir/uuid.cpp.o.d"
  "libet_common.a"
  "libet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
