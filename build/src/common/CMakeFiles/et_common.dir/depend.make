# Empty dependencies file for et_common.
# This may be replaced when dependencies are built.
