file(REMOVE_RECURSE
  "CMakeFiles/et_tracing.dir/authorization_token.cpp.o"
  "CMakeFiles/et_tracing.dir/authorization_token.cpp.o.d"
  "CMakeFiles/et_tracing.dir/registration.cpp.o"
  "CMakeFiles/et_tracing.dir/registration.cpp.o.d"
  "CMakeFiles/et_tracing.dir/trace_filter.cpp.o"
  "CMakeFiles/et_tracing.dir/trace_filter.cpp.o.d"
  "CMakeFiles/et_tracing.dir/trace_message.cpp.o"
  "CMakeFiles/et_tracing.dir/trace_message.cpp.o.d"
  "CMakeFiles/et_tracing.dir/trace_types.cpp.o"
  "CMakeFiles/et_tracing.dir/trace_types.cpp.o.d"
  "CMakeFiles/et_tracing.dir/traced_entity.cpp.o"
  "CMakeFiles/et_tracing.dir/traced_entity.cpp.o.d"
  "CMakeFiles/et_tracing.dir/tracing_broker.cpp.o"
  "CMakeFiles/et_tracing.dir/tracing_broker.cpp.o.d"
  "CMakeFiles/et_tracing.dir/tracker.cpp.o"
  "CMakeFiles/et_tracing.dir/tracker.cpp.o.d"
  "libet_tracing.a"
  "libet_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
