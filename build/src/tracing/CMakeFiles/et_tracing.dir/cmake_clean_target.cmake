file(REMOVE_RECURSE
  "libet_tracing.a"
)
