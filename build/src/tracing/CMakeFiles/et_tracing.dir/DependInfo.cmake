
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracing/authorization_token.cpp" "src/tracing/CMakeFiles/et_tracing.dir/authorization_token.cpp.o" "gcc" "src/tracing/CMakeFiles/et_tracing.dir/authorization_token.cpp.o.d"
  "/root/repo/src/tracing/registration.cpp" "src/tracing/CMakeFiles/et_tracing.dir/registration.cpp.o" "gcc" "src/tracing/CMakeFiles/et_tracing.dir/registration.cpp.o.d"
  "/root/repo/src/tracing/trace_filter.cpp" "src/tracing/CMakeFiles/et_tracing.dir/trace_filter.cpp.o" "gcc" "src/tracing/CMakeFiles/et_tracing.dir/trace_filter.cpp.o.d"
  "/root/repo/src/tracing/trace_message.cpp" "src/tracing/CMakeFiles/et_tracing.dir/trace_message.cpp.o" "gcc" "src/tracing/CMakeFiles/et_tracing.dir/trace_message.cpp.o.d"
  "/root/repo/src/tracing/trace_types.cpp" "src/tracing/CMakeFiles/et_tracing.dir/trace_types.cpp.o" "gcc" "src/tracing/CMakeFiles/et_tracing.dir/trace_types.cpp.o.d"
  "/root/repo/src/tracing/traced_entity.cpp" "src/tracing/CMakeFiles/et_tracing.dir/traced_entity.cpp.o" "gcc" "src/tracing/CMakeFiles/et_tracing.dir/traced_entity.cpp.o.d"
  "/root/repo/src/tracing/tracing_broker.cpp" "src/tracing/CMakeFiles/et_tracing.dir/tracing_broker.cpp.o" "gcc" "src/tracing/CMakeFiles/et_tracing.dir/tracing_broker.cpp.o.d"
  "/root/repo/src/tracing/tracker.cpp" "src/tracing/CMakeFiles/et_tracing.dir/tracker.cpp.o" "gcc" "src/tracing/CMakeFiles/et_tracing.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/et_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/et_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/et_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/et_discovery.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
