# Empty compiler generated dependencies file for et_tracing.
# This may be replaced when dependencies are built.
