file(REMOVE_RECURSE
  "CMakeFiles/et_transport.dir/link.cpp.o"
  "CMakeFiles/et_transport.dir/link.cpp.o.d"
  "CMakeFiles/et_transport.dir/network.cpp.o"
  "CMakeFiles/et_transport.dir/network.cpp.o.d"
  "CMakeFiles/et_transport.dir/realtime_network.cpp.o"
  "CMakeFiles/et_transport.dir/realtime_network.cpp.o.d"
  "CMakeFiles/et_transport.dir/virtual_network.cpp.o"
  "CMakeFiles/et_transport.dir/virtual_network.cpp.o.d"
  "libet_transport.a"
  "libet_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
