# Empty dependencies file for et_transport.
# This may be replaced when dependencies are built.
