file(REMOVE_RECURSE
  "libet_transport.a"
)
