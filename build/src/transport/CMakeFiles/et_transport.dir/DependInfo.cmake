
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/link.cpp" "src/transport/CMakeFiles/et_transport.dir/link.cpp.o" "gcc" "src/transport/CMakeFiles/et_transport.dir/link.cpp.o.d"
  "/root/repo/src/transport/network.cpp" "src/transport/CMakeFiles/et_transport.dir/network.cpp.o" "gcc" "src/transport/CMakeFiles/et_transport.dir/network.cpp.o.d"
  "/root/repo/src/transport/realtime_network.cpp" "src/transport/CMakeFiles/et_transport.dir/realtime_network.cpp.o" "gcc" "src/transport/CMakeFiles/et_transport.dir/realtime_network.cpp.o.d"
  "/root/repo/src/transport/virtual_network.cpp" "src/transport/CMakeFiles/et_transport.dir/virtual_network.cpp.o" "gcc" "src/transport/CMakeFiles/et_transport.dir/virtual_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
