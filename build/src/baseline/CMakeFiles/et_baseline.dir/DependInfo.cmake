
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/allpairs_heartbeat.cpp" "src/baseline/CMakeFiles/et_baseline.dir/allpairs_heartbeat.cpp.o" "gcc" "src/baseline/CMakeFiles/et_baseline.dir/allpairs_heartbeat.cpp.o.d"
  "/root/repo/src/baseline/gossip_detector.cpp" "src/baseline/CMakeFiles/et_baseline.dir/gossip_detector.cpp.o" "gcc" "src/baseline/CMakeFiles/et_baseline.dir/gossip_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/et_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
