file(REMOVE_RECURSE
  "libet_baseline.a"
)
