file(REMOVE_RECURSE
  "CMakeFiles/et_baseline.dir/allpairs_heartbeat.cpp.o"
  "CMakeFiles/et_baseline.dir/allpairs_heartbeat.cpp.o.d"
  "CMakeFiles/et_baseline.dir/gossip_detector.cpp.o"
  "CMakeFiles/et_baseline.dir/gossip_detector.cpp.o.d"
  "libet_baseline.a"
  "libet_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
