# Empty compiler generated dependencies file for et_baseline.
# This may be replaced when dependencies are built.
