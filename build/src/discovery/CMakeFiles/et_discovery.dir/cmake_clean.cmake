file(REMOVE_RECURSE
  "CMakeFiles/et_discovery.dir/advertisement.cpp.o"
  "CMakeFiles/et_discovery.dir/advertisement.cpp.o.d"
  "CMakeFiles/et_discovery.dir/discovery_client.cpp.o"
  "CMakeFiles/et_discovery.dir/discovery_client.cpp.o.d"
  "CMakeFiles/et_discovery.dir/tdn.cpp.o"
  "CMakeFiles/et_discovery.dir/tdn.cpp.o.d"
  "CMakeFiles/et_discovery.dir/wire.cpp.o"
  "CMakeFiles/et_discovery.dir/wire.cpp.o.d"
  "libet_discovery.a"
  "libet_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
