
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/discovery/advertisement.cpp" "src/discovery/CMakeFiles/et_discovery.dir/advertisement.cpp.o" "gcc" "src/discovery/CMakeFiles/et_discovery.dir/advertisement.cpp.o.d"
  "/root/repo/src/discovery/discovery_client.cpp" "src/discovery/CMakeFiles/et_discovery.dir/discovery_client.cpp.o" "gcc" "src/discovery/CMakeFiles/et_discovery.dir/discovery_client.cpp.o.d"
  "/root/repo/src/discovery/tdn.cpp" "src/discovery/CMakeFiles/et_discovery.dir/tdn.cpp.o" "gcc" "src/discovery/CMakeFiles/et_discovery.dir/tdn.cpp.o.d"
  "/root/repo/src/discovery/wire.cpp" "src/discovery/CMakeFiles/et_discovery.dir/wire.cpp.o" "gcc" "src/discovery/CMakeFiles/et_discovery.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/et_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/et_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
