file(REMOVE_RECURSE
  "libet_discovery.a"
)
