# Empty dependencies file for et_discovery.
# This may be replaced when dependencies are built.
