file(REMOVE_RECURSE
  "CMakeFiles/et_crypto.dir/aes.cpp.o"
  "CMakeFiles/et_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/et_crypto.dir/bigint.cpp.o"
  "CMakeFiles/et_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/et_crypto.dir/credential.cpp.o"
  "CMakeFiles/et_crypto.dir/credential.cpp.o.d"
  "CMakeFiles/et_crypto.dir/hmac.cpp.o"
  "CMakeFiles/et_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/et_crypto.dir/rsa.cpp.o"
  "CMakeFiles/et_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/et_crypto.dir/secret_key.cpp.o"
  "CMakeFiles/et_crypto.dir/secret_key.cpp.o.d"
  "CMakeFiles/et_crypto.dir/sha1.cpp.o"
  "CMakeFiles/et_crypto.dir/sha1.cpp.o.d"
  "CMakeFiles/et_crypto.dir/sha256.cpp.o"
  "CMakeFiles/et_crypto.dir/sha256.cpp.o.d"
  "libet_crypto.a"
  "libet_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
