# Empty dependencies file for et_crypto.
# This may be replaced when dependencies are built.
