file(REMOVE_RECURSE
  "libet_crypto.a"
)
