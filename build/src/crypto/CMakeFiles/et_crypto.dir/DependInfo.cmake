
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/crypto/CMakeFiles/et_crypto.dir/aes.cpp.o" "gcc" "src/crypto/CMakeFiles/et_crypto.dir/aes.cpp.o.d"
  "/root/repo/src/crypto/bigint.cpp" "src/crypto/CMakeFiles/et_crypto.dir/bigint.cpp.o" "gcc" "src/crypto/CMakeFiles/et_crypto.dir/bigint.cpp.o.d"
  "/root/repo/src/crypto/credential.cpp" "src/crypto/CMakeFiles/et_crypto.dir/credential.cpp.o" "gcc" "src/crypto/CMakeFiles/et_crypto.dir/credential.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/et_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/et_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/crypto/CMakeFiles/et_crypto.dir/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/et_crypto.dir/rsa.cpp.o.d"
  "/root/repo/src/crypto/secret_key.cpp" "src/crypto/CMakeFiles/et_crypto.dir/secret_key.cpp.o" "gcc" "src/crypto/CMakeFiles/et_crypto.dir/secret_key.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "src/crypto/CMakeFiles/et_crypto.dir/sha1.cpp.o" "gcc" "src/crypto/CMakeFiles/et_crypto.dir/sha1.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/et_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/et_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
