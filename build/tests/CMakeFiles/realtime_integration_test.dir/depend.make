# Empty dependencies file for realtime_integration_test.
# This may be replaced when dependencies are built.
