file(REMOVE_RECURSE
  "CMakeFiles/realtime_integration_test.dir/integration/realtime_tracing_test.cpp.o"
  "CMakeFiles/realtime_integration_test.dir/integration/realtime_tracing_test.cpp.o.d"
  "realtime_integration_test"
  "realtime_integration_test.pdb"
  "realtime_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
