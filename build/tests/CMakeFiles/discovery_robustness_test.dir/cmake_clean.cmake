file(REMOVE_RECURSE
  "CMakeFiles/discovery_robustness_test.dir/discovery/wire_robustness_test.cpp.o"
  "CMakeFiles/discovery_robustness_test.dir/discovery/wire_robustness_test.cpp.o.d"
  "discovery_robustness_test"
  "discovery_robustness_test.pdb"
  "discovery_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discovery_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
