# Empty dependencies file for discovery_robustness_test.
# This may be replaced when dependencies are built.
