file(REMOVE_RECURSE
  "CMakeFiles/tracing_security_test.dir/tracing/security_test.cpp.o"
  "CMakeFiles/tracing_security_test.dir/tracing/security_test.cpp.o.d"
  "tracing_security_test"
  "tracing_security_test.pdb"
  "tracing_security_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracing_security_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
