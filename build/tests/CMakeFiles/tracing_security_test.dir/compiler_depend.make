# Empty compiler generated dependencies file for tracing_security_test.
# This may be replaced when dependencies are built.
