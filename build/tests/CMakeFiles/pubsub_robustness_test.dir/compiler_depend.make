# Empty compiler generated dependencies file for pubsub_robustness_test.
# This may be replaced when dependencies are built.
