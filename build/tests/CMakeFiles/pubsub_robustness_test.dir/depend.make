# Empty dependencies file for pubsub_robustness_test.
# This may be replaced when dependencies are built.
