file(REMOVE_RECURSE
  "CMakeFiles/pubsub_robustness_test.dir/pubsub/wire_robustness_test.cpp.o"
  "CMakeFiles/pubsub_robustness_test.dir/pubsub/wire_robustness_test.cpp.o.d"
  "pubsub_robustness_test"
  "pubsub_robustness_test.pdb"
  "pubsub_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
