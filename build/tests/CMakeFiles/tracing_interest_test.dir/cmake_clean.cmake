file(REMOVE_RECURSE
  "CMakeFiles/tracing_interest_test.dir/tracing/interest_test.cpp.o"
  "CMakeFiles/tracing_interest_test.dir/tracing/interest_test.cpp.o.d"
  "tracing_interest_test"
  "tracing_interest_test.pdb"
  "tracing_interest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracing_interest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
