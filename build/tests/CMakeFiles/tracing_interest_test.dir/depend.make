# Empty dependencies file for tracing_interest_test.
# This may be replaced when dependencies are built.
