file(REMOVE_RECURSE
  "CMakeFiles/common_test.dir/common/bytes_test.cpp.o"
  "CMakeFiles/common_test.dir/common/bytes_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common/clock_test.cpp.o"
  "CMakeFiles/common_test.dir/common/clock_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common/random_test.cpp.o"
  "CMakeFiles/common_test.dir/common/random_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common/serialize_test.cpp.o"
  "CMakeFiles/common_test.dir/common/serialize_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common/stats_test.cpp.o"
  "CMakeFiles/common_test.dir/common/stats_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common/status_test.cpp.o"
  "CMakeFiles/common_test.dir/common/status_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common/topic_path_test.cpp.o"
  "CMakeFiles/common_test.dir/common/topic_path_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common/uuid_test.cpp.o"
  "CMakeFiles/common_test.dir/common/uuid_test.cpp.o.d"
  "common_test"
  "common_test.pdb"
  "common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
