# Empty dependencies file for crypto_property_test.
# This may be replaced when dependencies are built.
