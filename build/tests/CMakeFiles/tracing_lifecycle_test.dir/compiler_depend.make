# Empty compiler generated dependencies file for tracing_lifecycle_test.
# This may be replaced when dependencies are built.
