file(REMOVE_RECURSE
  "CMakeFiles/tracing_lifecycle_test.dir/tracing/lifecycle_test.cpp.o"
  "CMakeFiles/tracing_lifecycle_test.dir/tracing/lifecycle_test.cpp.o.d"
  "tracing_lifecycle_test"
  "tracing_lifecycle_test.pdb"
  "tracing_lifecycle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracing_lifecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
