
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pubsub/broker_test.cpp" "tests/CMakeFiles/pubsub_test.dir/pubsub/broker_test.cpp.o" "gcc" "tests/CMakeFiles/pubsub_test.dir/pubsub/broker_test.cpp.o.d"
  "/root/repo/tests/pubsub/constrained_topic_test.cpp" "tests/CMakeFiles/pubsub_test.dir/pubsub/constrained_topic_test.cpp.o" "gcc" "tests/CMakeFiles/pubsub_test.dir/pubsub/constrained_topic_test.cpp.o.d"
  "/root/repo/tests/pubsub/message_test.cpp" "tests/CMakeFiles/pubsub_test.dir/pubsub/message_test.cpp.o" "gcc" "tests/CMakeFiles/pubsub_test.dir/pubsub/message_test.cpp.o.d"
  "/root/repo/tests/pubsub/subscription_test.cpp" "tests/CMakeFiles/pubsub_test.dir/pubsub/subscription_test.cpp.o" "gcc" "tests/CMakeFiles/pubsub_test.dir/pubsub/subscription_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pubsub/CMakeFiles/et_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/et_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
