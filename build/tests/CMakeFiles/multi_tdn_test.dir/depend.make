# Empty dependencies file for multi_tdn_test.
# This may be replaced when dependencies are built.
