file(REMOVE_RECURSE
  "CMakeFiles/multi_tdn_test.dir/integration/multi_tdn_test.cpp.o"
  "CMakeFiles/multi_tdn_test.dir/integration/multi_tdn_test.cpp.o.d"
  "multi_tdn_test"
  "multi_tdn_test.pdb"
  "multi_tdn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tdn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
