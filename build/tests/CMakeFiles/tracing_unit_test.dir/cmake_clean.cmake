file(REMOVE_RECURSE
  "CMakeFiles/tracing_unit_test.dir/tracing/token_test.cpp.o"
  "CMakeFiles/tracing_unit_test.dir/tracing/token_test.cpp.o.d"
  "tracing_unit_test"
  "tracing_unit_test.pdb"
  "tracing_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracing_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
