# Empty dependencies file for tracing_unit_test.
# This may be replaced when dependencies are built.
