file(REMOVE_RECURSE
  "CMakeFiles/tracing_e2e_test.dir/tracing/end_to_end_test.cpp.o"
  "CMakeFiles/tracing_e2e_test.dir/tracing/end_to_end_test.cpp.o.d"
  "tracing_e2e_test"
  "tracing_e2e_test.pdb"
  "tracing_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracing_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
