file(REMOVE_RECURSE
  "CMakeFiles/backend_conformance_test.dir/transport/backend_conformance_test.cpp.o"
  "CMakeFiles/backend_conformance_test.dir/transport/backend_conformance_test.cpp.o.d"
  "backend_conformance_test"
  "backend_conformance_test.pdb"
  "backend_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
