# Empty compiler generated dependencies file for backend_conformance_test.
# This may be replaced when dependencies are built.
