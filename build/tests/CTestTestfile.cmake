# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/tracing_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/tracing_security_test[1]_include.cmake")
include("/root/repo/build/tests/pubsub_test[1]_include.cmake")
include("/root/repo/build/tests/discovery_test[1]_include.cmake")
include("/root/repo/build/tests/tracing_unit_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_property_test[1]_include.cmake")
include("/root/repo/build/tests/pubsub_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/tracing_interest_test[1]_include.cmake")
include("/root/repo/build/tests/realtime_integration_test[1]_include.cmake")
include("/root/repo/build/tests/tracing_lifecycle_test[1]_include.cmake")
include("/root/repo/build/tests/discovery_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/backend_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/multi_tdn_test[1]_include.cmake")
