file(REMOVE_RECURSE
  "CMakeFiles/load_aware_dispatch.dir/load_aware_dispatch.cpp.o"
  "CMakeFiles/load_aware_dispatch.dir/load_aware_dispatch.cpp.o.d"
  "load_aware_dispatch"
  "load_aware_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_aware_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
