# Empty compiler generated dependencies file for load_aware_dispatch.
# This may be replaced when dependencies are built.
