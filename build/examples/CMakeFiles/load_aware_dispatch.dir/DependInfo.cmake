
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/load_aware_dispatch.cpp" "examples/CMakeFiles/load_aware_dispatch.dir/load_aware_dispatch.cpp.o" "gcc" "examples/CMakeFiles/load_aware_dispatch.dir/load_aware_dispatch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tracing/CMakeFiles/et_tracing.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/et_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/et_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/et_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/et_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/et_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
