# Empty compiler generated dependencies file for secure_restricted_tracing.
# This may be replaced when dependencies are built.
