file(REMOVE_RECURSE
  "CMakeFiles/secure_restricted_tracing.dir/secure_restricted_tracing.cpp.o"
  "CMakeFiles/secure_restricted_tracing.dir/secure_restricted_tracing.cpp.o.d"
  "secure_restricted_tracing"
  "secure_restricted_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_restricted_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
