file(REMOVE_RECURSE
  "CMakeFiles/service_fleet_monitor.dir/service_fleet_monitor.cpp.o"
  "CMakeFiles/service_fleet_monitor.dir/service_fleet_monitor.cpp.o.d"
  "service_fleet_monitor"
  "service_fleet_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_fleet_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
