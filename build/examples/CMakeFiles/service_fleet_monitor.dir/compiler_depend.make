# Empty compiler generated dependencies file for service_fleet_monitor.
# This may be replaced when dependencies are built.
